//! Shadow-heap oracle: reclamation-lifecycle checking by fresh id.
//!
//! Every tracked object gets a [`ShadowId`] minted at registration —
//! never derived from its address, so allocator reuse (ABA) cannot alias
//! two objects onto one entry. The table records a lifecycle per entry:
//!
//! ```text
//!   Live ──retire──▶ Retired ──destructor ran──▶ Reclaimed
//!     │                  │
//!     └────leak()────────┴──▶ Leaked   (deliberate, e.g. Retired::leak)
//! ```
//!
//! Violations become checker reports (or panics outside a session):
//!
//! * **UseAfterReclaim** — an instrumented read/write through
//!   [`TrackedCell`] found its entry `Reclaimed`: the destructor already
//!   ran, the access is a use-after-free.
//! * **DoubleRetire** — `retire` on an entry not `Live`.
//! * **DoubleReclaim** — a destructor ran twice (double free).
//! * **ReclaimWithoutRetire** — a destructor ran on a `Live` entry: the
//!   object was freed without ever passing through deferral.
//!
//! Two design points make the oracle *deterministic* under
//! [`Policy::Dpor`](crate::sched::Policy::Dpor) rather than a lucky
//! crash detector:
//!
//! 1. Each entry carries a checker location id, and reclamation is a
//!    **write-kind scheduling step** on that location
//!    ([`checker::shadow_write_step`]) while tracked accesses are
//!    read/write steps on the same location
//!    ([`checker::data_access_validated`]). The DPOR dependence relation
//!    therefore *sees* reader-vs-destructor conflicts and is forced to
//!    explore both orders — an untracked free would look independent and
//!    the fatal interleaving could be pruned as redundant.
//! 2. Validation runs *inside* the access's scheduling step, so a
//!    reclamation can never slip between "check the table" and "do the
//!    access".
//!
//! Sessions: [`begin_session`]/[`end_session`] (called by the checker
//! around every execution) stamp entries allocated by in-session threads
//! with an epoch; at session end, epoch entries still `Retired` are
//! reported as leaks (their destructor never ran) and the epoch's
//! entries are purged. Entries allocated outside any session are never
//! purged and violate by panicking.

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::checker;

/// Freshly-minted identity of a tracked object. Never reused, never
/// derived from an address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShadowId(u64);

/// The lifecycle violations the oracle detects. See the module docs for
/// what each means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShadowKind {
    /// Instrumented access to an object whose destructor already ran.
    UseAfterReclaim,
    /// `retire` on an object that was not `Live` (already retired,
    /// reclaimed, or leaked).
    DoubleRetire,
    /// Destructor ran on an already-reclaimed (or leaked) object.
    DoubleReclaim,
    /// Destructor ran on a `Live` object that was never retired.
    ReclaimWithoutRetire,
}

impl std::fmt::Display for ShadowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShadowKind::UseAfterReclaim => "use-after-reclaim",
            ShadowKind::DoubleRetire => "double-retire",
            ShadowKind::DoubleReclaim => "double-reclaim",
            ShadowKind::ReclaimWithoutRetire => "reclaim-without-retire",
        };
        f.write_str(s)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LifeState {
    Live,
    Retired,
    Reclaimed,
    Leaked,
}

struct Entry {
    state: LifeState,
    label: &'static str,
    bytes: usize,
    /// Session epoch of the allocating thread, `None` when allocated
    /// outside any checker session (such entries are never purged).
    epoch: Option<u64>,
    /// Checker location id shared by tracked accesses and the
    /// reclamation step, so DPOR treats them as dependent.
    loc: usize,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);
/// Epoch of the session currently executing (0 = none). Checker runs
/// are process-serialized, so a single slot suffices.
static CURRENT_EPOCH: AtomicU64 = AtomicU64::new(0);
// BTreeMap: const-constructible and deterministically ordered, so leak
// reports come out in a stable order run-to-run.
static TABLE: Mutex<BTreeMap<u64, Entry>> = Mutex::new(BTreeMap::new());

fn table() -> std::sync::MutexGuard<'static, BTreeMap<u64, Entry>> {
    // The table is tiny and accesses are short; poisoning only happens
    // if a violation panicked mid-update, in which case the state is
    // still consistent.
    TABLE.lock().unwrap_or_else(|e| e.into_inner())
}

fn alloc_epoch() -> Option<u64> {
    if checker::in_session() {
        let e = CURRENT_EPOCH.load(Ordering::SeqCst);
        if e != 0 {
            return Some(e);
        }
    }
    None
}

/// Register a new tracked object as `Live` and mint its identity.
pub fn register(label: &'static str, bytes: usize) -> ShadowId {
    let id = ShadowId(NEXT_ID.fetch_add(1, Ordering::SeqCst));
    let entry = Entry {
        state: LifeState::Live,
        label,
        bytes,
        epoch: alloc_epoch(),
        loc: checker::fresh_loc(),
    };
    table().insert(id.0, entry);
    id
}

/// The checker location id backing `id`'s accesses — for harnesses that
/// want extra scheduling points on the same conflict location.
pub fn loc_of(id: ShadowId) -> usize {
    table().get(&id.0).map(|e| e.loc).unwrap_or(usize::MAX - 1)
}

/// `Live → Retired`. Anything else is a [`ShadowKind::DoubleRetire`].
pub fn on_retire(id: ShadowId) {
    let mut t = table();
    match t.get_mut(&id.0) {
        None => {
            drop(t);
            checker::shadow_violation(ShadowKind::DoubleRetire, "<unknown shadow id>");
        }
        Some(e) => {
            if e.state == LifeState::Live {
                e.state = LifeState::Retired;
            } else {
                let label = e.label;
                drop(t);
                checker::shadow_violation(ShadowKind::DoubleRetire, label);
            }
        }
    }
}

/// The destructor ran: `Retired → Reclaimed` is the legal edge. This is
/// also a write-kind scheduling step on the entry's location (see module
/// docs) so exhaustive exploration reorders it against tracked reads.
#[track_caller]
pub fn on_reclaim(id: ShadowId) {
    let mut t = table();
    let (loc, label, viol) = match t.get_mut(&id.0) {
        None => (
            usize::MAX - 1,
            "<unknown shadow id>",
            Some(ShadowKind::DoubleReclaim),
        ),
        Some(e) => {
            let viol = match e.state {
                LifeState::Retired => None,
                LifeState::Live => Some(ShadowKind::ReclaimWithoutRetire),
                LifeState::Reclaimed | LifeState::Leaked => Some(ShadowKind::DoubleReclaim),
            };
            if e.state != LifeState::Reclaimed {
                e.state = LifeState::Reclaimed;
            }
            (e.loc, e.label, viol)
        }
    };
    drop(t);
    checker::shadow_write_step(loc, label, viol);
}

/// Deliberate leak (`Retired::leak`): the object is intentionally never
/// reclaimed and drops out of leak accounting. Leaking an
/// already-reclaimed object is a [`ShadowKind::DoubleReclaim`].
pub fn on_leak(id: ShadowId) {
    let mut t = table();
    match t.get_mut(&id.0) {
        None => {
            drop(t);
            checker::shadow_violation(ShadowKind::DoubleReclaim, "<unknown shadow id>");
        }
        Some(e) => match e.state {
            LifeState::Live | LifeState::Retired => e.state = LifeState::Leaked,
            LifeState::Leaked => {}
            LifeState::Reclaimed => {
                let label = e.label;
                drop(t);
                checker::shadow_violation(ShadowKind::DoubleReclaim, label);
            }
        },
    }
}

/// Violation (if any) of reading/writing through `id` right now. Used
/// by [`TrackedCell`] inside the access's scheduling step. A missing
/// entry (purged by a previous session's teardown) is not flagged.
pub fn access_violation(id: ShadowId) -> Option<(ShadowKind, &'static str)> {
    let t = table();
    match t.get(&id.0) {
        Some(e) if e.state == LifeState::Reclaimed => Some((ShadowKind::UseAfterReclaim, e.label)),
        _ => None,
    }
}

/// Start a shadow session: allocations by in-session threads are stamped
/// with the returned epoch. Called by the checker around each execution.
pub(crate) fn begin_session() -> u64 {
    let e = NEXT_EPOCH.fetch_add(1, Ordering::SeqCst);
    CURRENT_EPOCH.store(e, Ordering::SeqCst);
    e
}

/// End a shadow session: entries of `epoch` still `Retired` (their
/// destructor never ran) are returned as `(label, bytes)` leaks; all of
/// the epoch's entries are purged.
pub(crate) fn end_session(epoch: u64) -> Vec<(String, usize)> {
    CURRENT_EPOCH
        .compare_exchange(epoch, 0, Ordering::SeqCst, Ordering::SeqCst)
        .ok();
    let mut t = table();
    let mut leaks = Vec::new();
    t.retain(|_, e| {
        if e.epoch != Some(epoch) {
            return true;
        }
        if e.state == LifeState::Retired {
            leaks.push((e.label.to_string(), e.bytes));
        }
        false
    });
    leaks
}

/// A shared cell whose every access validates against the shadow table
/// inside its scheduling step. The payload the reclamation harnesses
/// read through guards.
pub struct TrackedCell<T> {
    inner: UnsafeCell<T>,
    id: ShadowId,
    loc: usize,
}

// SAFETY: the cell's accesses go through the checker, which serializes
// them under a session; outside a session the caller carries the same
// obligations as with any UnsafeCell-based shared cell.
unsafe impl<T: Send> Send for TrackedCell<T> {}
// SAFETY: as above — shared access is mediated by the checker.
unsafe impl<T: Send + Sync> Sync for TrackedCell<T> {}

impl<T> TrackedCell<T> {
    pub fn new(label: &'static str, value: T) -> Self {
        let id = register(label, std::mem::size_of::<T>());
        let loc = loc_of(id);
        TrackedCell {
            inner: UnsafeCell::new(value),
            id,
            loc,
        }
    }

    pub fn id(&self) -> ShadowId {
        self.id
    }

    /// Validated read: reports [`ShadowKind::UseAfterReclaim`] when the
    /// backing object was already reclaimed.
    #[track_caller]
    pub fn read(&self) -> T
    where
        T: Copy,
    {
        let id = self.id;
        checker::data_access_validated(
            self.loc,
            false,
            move || access_violation(id),
            // SAFETY: serialized by the checker step (see Sync impl).
            || unsafe { *self.inner.get() },
        )
    }

    /// Validated write.
    #[track_caller]
    pub fn write(&self, value: T) {
        let id = self.id;
        checker::data_access_validated(
            self.loc,
            true,
            move || access_violation(id),
            // SAFETY: serialized by the checker step (see Sync impl).
            || unsafe { *self.inner.get() = value },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_happy_path_is_silent() {
        let id = register("happy", 8);
        on_retire(id);
        on_reclaim(id);
        assert_eq!(
            access_violation(id),
            Some((ShadowKind::UseAfterReclaim, "happy"))
        );
    }

    #[test]
    fn live_and_retired_reads_are_legal() {
        let id = register("still-ok", 8);
        assert_eq!(access_violation(id), None);
        on_retire(id);
        assert_eq!(access_violation(id), None);
    }

    #[test]
    #[should_panic(expected = "DoubleRetire")]
    fn double_retire_panics_outside_sessions() {
        let id = register("twice", 8);
        on_retire(id);
        on_retire(id);
    }

    #[test]
    #[should_panic(expected = "ReclaimWithoutRetire")]
    fn reclaim_without_retire_panics_outside_sessions() {
        let id = register("early", 8);
        on_reclaim(id);
    }

    #[test]
    #[should_panic(expected = "DoubleReclaim")]
    fn double_reclaim_panics_outside_sessions() {
        let id = register("double-free", 8);
        on_retire(id);
        on_reclaim(id);
        on_reclaim(id);
    }

    #[test]
    fn leaked_entries_leave_accounting() {
        let id = register("deliberate", 16);
        on_retire(id);
        on_leak(id);
        // Leaked is terminal and silent.
        assert_eq!(access_violation(id), None);
    }

    #[test]
    fn out_of_session_entries_survive_session_teardown() {
        let id = register("outsider", 8);
        let epoch = begin_session();
        let leaks = end_session(epoch);
        assert!(leaks.iter().all(|(l, _)| l != "outsider"));
        assert_eq!(access_violation(id), None);
        on_retire(id);
        on_reclaim(id);
    }
}
