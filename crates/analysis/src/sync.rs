//! The lock facade: `Mutex` / `Condvar` / `RwLock`.
//!
//! Without `check`, these are re-exports of the (vendored) `parking_lot`
//! types. With `check`, they wrap the same types but never truly block
//! inside a checker session: acquisition is a try-lock retried across
//! scheduling points (the blocked thread is descheduled until the holder
//! releases), and condvar waits are modeled as block-until-notify under
//! PCT / spurious wakeups under the random policy. Outside a session the
//! wrappers fall through to plain blocking operations.

#[cfg(not(feature = "check"))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(feature = "check")]
pub use checked::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(feature = "check")]
mod checked {
    use crate::checker::{self, LocSlot};
    use std::time::{Duration, Instant};

    /// Bounded number of scheduled acquisition attempts for the timed
    /// lock methods: modeled time, deterministic, unrelated to the real
    /// clock (a session never sleeps).
    const TIMED_ATTEMPTS: usize = 64;

    /// Instrumented drop-in for `parking_lot::Mutex`.
    pub struct Mutex<T: ?Sized> {
        meta: LocSlot,
        inner: parking_lot::Mutex<T>,
    }

    /// Guard for the instrumented [`Mutex`]. The inner guard lives in an
    /// `Option` so condvar waits can release and reacquire in place.
    pub struct MutexGuard<'a, T: ?Sized> {
        mutex: &'a Mutex<T>,
        inner: Option<parking_lot::MutexGuard<'a, T>>,
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Self {
            Mutex {
                meta: LocSlot::new(),
                inner: parking_lot::Mutex::new(value),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn wrap<'a>(&'a self, g: parking_lot::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard {
                mutex: self,
                inner: Some(g),
            }
        }

        #[track_caller]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            if !checker::in_session() {
                return self.wrap(self.inner.lock());
            }
            loop {
                if let Some(g) = checker::lock_acquire_attempt(&self.meta, || self.inner.try_lock())
                {
                    return self.wrap(g);
                }
            }
        }

        #[track_caller]
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            checker::lock_try_once(&self.meta, || self.inner.try_lock()).map(|g| self.wrap(g))
        }

        #[track_caller]
        pub fn try_lock_for(&self, timeout: Duration) -> Option<MutexGuard<'_, T>> {
            if !checker::in_session() {
                return self.inner.try_lock_for(timeout).map(|g| self.wrap(g));
            }
            for _ in 0..TIMED_ATTEMPTS {
                if let Some(g) = checker::lock_try_once(&self.meta, || self.inner.try_lock()) {
                    return Some(self.wrap(g));
                }
            }
            None
        }

        #[track_caller]
        pub fn try_lock_until(&self, deadline: Instant) -> Option<MutexGuard<'_, T>> {
            if !checker::in_session() {
                return self.inner.try_lock_until(deadline).map(|g| self.wrap(g));
            }
            self.try_lock_for(Duration::ZERO)
        }

        pub fn is_locked(&self) -> bool {
            self.inner.is_locked()
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard released")
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard released")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                checker::lock_release(&self.mutex.meta, move || drop(g));
            }
        }
    }

    /// Result of a timed condvar wait.
    #[derive(Clone, Copy, Debug)]
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    /// Instrumented drop-in for `parking_lot::Condvar`.
    pub struct Condvar {
        meta: LocSlot,
        inner: parking_lot::Condvar,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar {
                meta: LocSlot::new(),
                inner: parking_lot::Condvar::new(),
            }
        }

        #[track_caller]
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            if !checker::in_session() {
                self.inner
                    .wait(guard.inner.as_mut().expect("guard released"));
                return;
            }
            let mutex = guard.mutex;
            // Block on the condvar and release the mutex in one step, so
            // a notify between "check predicate" and "park" is impossible
            // (the notifier cannot run while we hold the grant).
            let g = guard.inner.take().expect("guard released");
            checker::cv_block_and_release(&self.meta, &mutex.meta, move || drop(g));
            // Park. Being granted again means: notified (PCT) or a
            // spurious wakeup (random policy).
            checker::yield_step();
            // Reacquire before returning, as a real condvar does.
            loop {
                if let Some(g) =
                    checker::lock_acquire_attempt(&mutex.meta, || mutex.inner.try_lock())
                {
                    guard.inner = Some(g);
                    break;
                }
            }
            checker::cv_wake(&self.meta);
        }

        #[track_caller]
        pub fn wait_until<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            deadline: Instant,
        ) -> WaitTimeoutResult {
            if !checker::in_session() {
                let r = self
                    .inner
                    .wait_until(guard.inner.as_mut().expect("guard released"), deadline);
                return WaitTimeoutResult {
                    timed_out: r.timed_out(),
                };
            }
            self.wait(guard);
            // Modeled time: the wait "timed out" only if real time is
            // already past the deadline (sessions never sleep, so this
            // fires for deadlines in the past or after long runs).
            WaitTimeoutResult {
                timed_out: Instant::now() >= deadline,
            }
        }

        #[track_caller]
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            let deadline = Instant::now() + timeout;
            self.wait_until(guard, deadline)
        }

        #[track_caller]
        pub fn notify_one(&self) {
            checker::cv_notify(&self.meta, || {
                self.inner.notify_one();
            });
        }

        #[track_caller]
        pub fn notify_all(&self) {
            checker::cv_notify(&self.meta, || {
                self.inner.notify_all();
            });
        }
    }

    /// Instrumented drop-in for `parking_lot::RwLock`.
    pub struct RwLock<T: ?Sized> {
        meta: LocSlot,
        inner: parking_lot::RwLock<T>,
    }

    pub struct RwLockReadGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
    }

    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T> RwLock<T> {
        pub const fn new(value: T) -> Self {
            RwLock {
                meta: LocSlot::new(),
                inner: parking_lot::RwLock::new(value),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        #[track_caller]
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            if !checker::in_session() {
                return RwLockReadGuard {
                    lock: self,
                    inner: Some(self.inner.read()),
                };
            }
            loop {
                if let Some(g) = checker::lock_acquire_attempt(&self.meta, || self.inner.try_read())
                {
                    return RwLockReadGuard {
                        lock: self,
                        inner: Some(g),
                    };
                }
            }
        }

        #[track_caller]
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            if !checker::in_session() {
                return RwLockWriteGuard {
                    lock: self,
                    inner: Some(self.inner.write()),
                };
            }
            loop {
                if let Some(g) =
                    checker::lock_acquire_attempt(&self.meta, || self.inner.try_write())
                {
                    return RwLockWriteGuard {
                        lock: self,
                        inner: Some(g),
                    };
                }
            }
        }

        #[track_caller]
        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            checker::lock_try_once(&self.meta, || self.inner.try_read()).map(|g| RwLockReadGuard {
                lock: self,
                inner: Some(g),
            })
        }

        #[track_caller]
        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            checker::lock_try_once(&self.meta, || self.inner.try_write()).map(|g| {
                RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                }
            })
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard released")
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                checker::lock_release(&self.lock.meta, move || drop(g));
            }
        }
    }

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard released")
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard released")
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                checker::lock_release(&self.lock.meta, move || drop(g));
            }
        }
    }
}
