//! The deterministic concurrency checker.
//!
//! A [`Checker`] runs a closure many times, once per seed. Each run is a
//! *session*: threads spawned through [`crate::thread::spawn`] register
//! with the session, and every instrumented operation (facade atomics,
//! locks, [`crate::cell::CheckedCell`] accesses) becomes a scheduling
//! point. The session serializes execution — exactly one registered
//! thread runs between two scheduling points — and the schedule is chosen
//! by a seeded policy ([`crate::sched::Policy`]), so any interleaving the
//! checker explores can be replayed from its seed alone.
//!
//! On top of the schedule the session maintains FastTrack-style
//! happens-before state (see [`crate::clock`]):
//!
//! * each thread carries a vector clock, ticked at every operation;
//! * each atomic location carries a *sync clock*: release stores replace
//!   it with the writer's clock, release RMWs join into it (release
//!   sequences), relaxed stores clear it, and acquire loads/RMWs join it
//!   into the reader's clock;
//! * `SeqCst` operations and fences additionally join through a global SC
//!   clock (this can only add edges, i.e. hide races — never invent one);
//! * mutexes, rwlocks and condvars carry clocks joined on acquire/release;
//! * plain-data accesses via `CheckedCell` are checked: two conflicting
//!   accesses with incomparable clocks are reported as a data race with
//!   both source locations and the reproducing seed.
//!
//! Threads never truly block inside a session: facade locks spin through
//! scheduling points, condvar waits are modeled as spurious wakeups, and
//! a step budget aborts runaway interleavings deterministically.
//!
//! Besides the seeded sampling policies, [`Policy::Dpor`] runs the same
//! engine in *forced-schedule* mode under the source-DPOR explorer in
//! [`crate::dpor`]: each execution records a trace (one entry per
//! scheduling step, carrying the executed operation and the enabled set
//! at the decision), the explorer derives backtrack points from a
//! dependence relation over the trace, and sleep sets prune provably
//! redundant interleavings. Failures found this way carry the exact
//! schedule serialized to a string, replayable via [`Checker::replay`].
//!
//! The [`crate::shadow`] oracle hooks in here too: reclamation events
//! become write-kind steps on the shadow entry's location (so DPOR
//! explores read-vs-reclaim orderings) and lifecycle violations are
//! recorded into the running session with the schedule attached.

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::clock::VectorClock;
use crate::dpor;
use crate::sched::{sample_change_points, Policy, Rng};
use crate::shadow::ShadowKind;

pub use std::sync::atomic::Ordering;

// ---------------------------------------------------------------------------
// Global session plumbing
// ---------------------------------------------------------------------------

/// Fast-path guard: when zero, no session exists anywhere in the process
/// and every instrumented operation falls through to the plain one.
static ACTIVE_SESSIONS: StdAtomicUsize = StdAtomicUsize::new(0);

/// Location ids are global and monotonic, lazily stamped into each
/// facade object on first checked access. Fresh objects always get fresh
/// ids, so address reuse across (or within) sessions cannot alias state.
static NEXT_LOC_ID: StdAtomicUsize = StdAtomicUsize::new(1);

std::thread_local! {
    static TLS_SESSION: std::cell::RefCell<Option<(Arc<Session>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// One checker session at a time per process: sessions serialize their
/// registered threads, and interleaving two sessions' real threads would
/// make wall-clock behavior (not correctness) noisy.
static RUN_LOCK: StdMutex<()> = StdMutex::new(());

fn lock_state(sess: &Session) -> StdMutexGuard<'_, State> {
    sess.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Panic payload used to unwind registered threads when a session aborts
/// (step budget exceeded, or stop-on-first-race). Swallowed by the spawn
/// wrapper; never surfaces to user code as a test failure.
struct SessionAbort;

/// Per-object slot for the lazily assigned location id.
pub struct LocSlot(StdAtomicUsize);

/// Allocate a fresh location id eagerly (shadow-heap entries pair every
/// tracked object with a location so reclamation becomes a write-kind
/// event the explorer can reorder against reads).
pub(crate) fn fresh_loc() -> usize {
    NEXT_LOC_ID.fetch_add(1, StdOrdering::Relaxed)
}

/// Current location watermark. Paired with [`reset_locs`] to pin id
/// allocation across the executions of one DPOR exploration: sleep-set
/// and done-set entries carry `(loc, kind)` ops from earlier executions,
/// and matching them in later executions requires the re-created facade
/// objects to receive the *same* ids. Deterministic replay makes per-run
/// allocation order identical, so restarting the counter from the
/// exploration's base restores id stability. Only meaningful while the
/// run lock is held.
pub(crate) fn loc_watermark() -> usize {
    NEXT_LOC_ID.load(StdOrdering::Relaxed)
}

pub(crate) fn reset_locs(base: usize) {
    NEXT_LOC_ID.store(base, StdOrdering::Relaxed);
}

impl LocSlot {
    #[allow(clippy::new_without_default)] // mirrors atomic `new`; always const-constructed
    pub const fn new() -> Self {
        LocSlot(StdAtomicUsize::new(0))
    }

    fn id(&self) -> usize {
        let v = self.0.load(StdOrdering::Relaxed);
        if v != 0 {
            return v;
        }
        let fresh = NEXT_LOC_ID.fetch_add(1, StdOrdering::Relaxed);
        match self
            .0
            .compare_exchange(0, fresh, StdOrdering::Relaxed, StdOrdering::Relaxed)
        {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }
}

/// The session + thread index of the caller, if the caller is a thread
/// registered with a live session and not currently unwinding. Returns
/// `None` otherwise — the caller must then perform the plain operation.
fn session_for_op() -> Option<(Arc<Session>, usize)> {
    if ACTIVE_SESSIONS.load(StdOrdering::Relaxed) == 0 || std::thread::panicking() {
        return None;
    }
    TLS_SESSION.with(|t| t.borrow().clone())
}

// ---------------------------------------------------------------------------
// Trace recording (consumed by crate::dpor and the budget-abort reports)
// ---------------------------------------------------------------------------

/// Pseudo-location for memory fences: fences are mutually dependent (a
/// `SeqCst` fence's effect depends on its position in the SC order) but
/// independent of per-location accesses. See DESIGN.md §10 for what this
/// over-approximation does and does not cover.
pub(crate) const FENCE_LOC: usize = usize::MAX;

/// What kind of event a scheduling step executed, for the dependence
/// relation DPOR reorders by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// A step with no dependence footprint (park polls, blocked probes).
    Step,
    /// An explicit yield (spin backoff): also a hint to the forced-mode
    /// default scheduler to rotate away from the yielding thread.
    Yield,
    /// Atomic load (read-kind).
    Load,
    /// Atomic store (write-kind).
    Store,
    /// Atomic read-modify-write (write-kind).
    Rmw,
    /// Plain-data read through `CheckedCell`/`TrackedCell` (read-kind).
    DataRead,
    /// Plain-data write, including shadow-heap reclamation events
    /// (write-kind).
    DataWrite,
    /// Lock/condvar traffic on the sync object's location (write-kind:
    /// any two operations on the same lock conflict).
    Sync,
    /// Thread spawn; `loc` carries the child's thread index (a
    /// program-order edge for the explorer's clocks, not a memory op).
    Spawn,
    /// Successful join; `loc` carries the target's thread index.
    Join,
}

impl OpKind {
    pub(crate) fn is_memory(self) -> bool {
        matches!(
            self,
            OpKind::Load
                | OpKind::Store
                | OpKind::Rmw
                | OpKind::DataRead
                | OpKind::DataWrite
                | OpKind::Sync
        )
    }

    pub(crate) fn is_write(self) -> bool {
        matches!(
            self,
            OpKind::Store | OpKind::Rmw | OpKind::DataWrite | OpKind::Sync
        )
    }
}

/// The operation a scheduling step executed: a location id plus kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Op {
    pub(crate) loc: usize,
    pub(crate) kind: OpKind,
}

impl Op {
    pub(crate) const NONE: Op = Op {
        loc: 0,
        kind: OpKind::Step,
    };
}

/// Two operations conflict (their order is observable) iff they touch
/// the same location and at least one writes. Spawn/join/yield edges are
/// handled by the explorer's clocks, not by this relation.
pub(crate) fn dependent(a: Op, b: Op) -> bool {
    a.kind.is_memory()
        && b.kind.is_memory()
        && a.loc == b.loc
        && (a.kind.is_write() || b.kind.is_write())
}

/// Sleep-set wake test for an entry recorded at watermark `w`: exact
/// dependence for prefix-stable locations (`loc < w`), conservative
/// any-fresh-memory-op wake otherwise. Location ids are stamped lazily
/// in access order, so an id first stamped *after* the divergence point
/// of two sibling executions may name different objects in each; waking
/// on any post-watermark memory op costs pruning, never soundness.
pub(crate) fn wakes(s: Op, s_watermark: usize, op: Op) -> bool {
    dependent(s, op)
        || (s.kind.is_memory()
            && op.kind.is_memory()
            && s.loc >= s_watermark
            && op.loc >= s_watermark)
}

/// One recorded scheduling step: who ran, what they did, who was enabled
/// at the decision (the explorer's backtrack candidates), and the
/// location watermark before the step (ids below it are stable across
/// every execution sharing the prefix up to this step).
#[derive(Clone, Debug)]
pub(crate) struct TraceStep {
    pub(crate) thread: usize,
    pub(crate) op: Op,
    pub(crate) enabled: Vec<usize>,
    pub(crate) watermark: usize,
}

/// A sleep-set entry: a thread, its recorded next op, and the watermark
/// at the divergence point the op was recorded from (see [`wakes`]).
pub(crate) type SleepEntry = (usize, Op, usize);

/// How a session picks threads: seeded sampling (the policy decides), or
/// a forced schedule prefix (DPOR exploration / schedule replay) with a
/// deterministic round-robin default past the prefix and an optional
/// sleep set pruning redundant continuations.
pub(crate) struct RunMode {
    forced: Option<Vec<usize>>,
    sleep: Vec<SleepEntry>,
    sleep_from: usize,
}

impl RunMode {
    pub(crate) fn seeded() -> Self {
        RunMode {
            forced: None,
            sleep: Vec::new(),
            sleep_from: usize::MAX,
        }
    }

    pub(crate) fn forced(schedule: Vec<usize>, sleep: Vec<SleepEntry>, sleep_from: usize) -> Self {
        RunMode {
            forced: Some(schedule),
            sleep,
            sleep_from,
        }
    }
}

// ---------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------

/// What a parked thread is waiting for. Blocked threads are not schedule
/// candidates until the condition clears (under `Policy::Random`,
/// condvar waits stay eligible — modeling spurious wakeups).
#[derive(Clone, Copy, PartialEq, Eq)]
enum BlockedOn {
    /// `JoinHandle::join` on a checked thread.
    Thread(usize),
    /// A facade lock (by location id); cleared on release.
    Lock(usize),
    /// A facade condvar (by location id); cleared on notify.
    Cv(usize),
}

struct ThreadSt {
    clock: VectorClock,
    /// Parked at a scheduling point, waiting for the grant.
    waiting: bool,
    finished: bool,
    blocked: Option<BlockedOn>,
    /// Last executed step was a yield (forced-mode default rotates away).
    last_yield: bool,
    /// PCT priority; initial values live in `[2^64, 2^65)`, demotions
    /// count down from `2^64 - 1`, so any demoted thread ranks below any
    /// undemoted one and successive demotions rank lower still.
    priority: u128,
}

#[derive(Default)]
struct DataState {
    last_write: Option<Access>,
    /// Reads since the last write (one entry per reading thread).
    reads: Vec<Access>,
}

#[derive(Clone)]
struct Access {
    thread: usize,
    /// The accessor's own clock component at the access.
    at: u64,
    site: &'static Location<'static>,
}

struct State {
    seed: u64,
    rng: Rng,
    policy: Policy,
    max_steps: usize,
    steps: usize,
    stop_on_first_race: bool,
    aborted: bool,
    budget_exhausted: bool,
    deadlocked: bool,
    /// Thread currently granted execution (runs until its next
    /// scheduling point).
    active: Option<usize>,
    last_ran: Option<usize>,
    threads: Vec<ThreadSt>,
    unfinished: usize,
    /// Sync clocks for atomic locations.
    atomics: HashMap<usize, VectorClock>,
    /// Clocks for mutexes / rwlocks.
    locks: HashMap<usize, VectorClock>,
    /// Clocks for condvars.
    cvs: HashMap<usize, VectorClock>,
    /// Plain-data (CheckedCell) access history.
    datas: HashMap<usize, DataState>,
    /// Global SC order clock.
    sc_clock: VectorClock,
    races: Vec<Race>,
    /// Shadow-heap lifecycle violations recorded this iteration.
    shadow: Vec<ShadowRec>,
    panics: Vec<Box<dyn std::any::Any + Send + 'static>>,
    /// PCT change points (ascending step numbers) not yet applied.
    change_points: std::collections::VecDeque<usize>,
    demote_next: u128,
    /// Forced schedule prefix (DPOR exploration / schedule replay).
    forced: Option<Vec<usize>>,
    /// Cursor into `forced`; entries whose thread is not enabled when
    /// their turn comes (minimized schedules) are skipped permanently.
    forced_pos: usize,
    /// Sleep set: threads whose recorded next operation has already been
    /// explored from the branch point; they stay unscheduled by default
    /// picks until a dependent operation wakes them.
    sleep: Vec<SleepEntry>,
    /// Trace index from which executed operations apply the wake rule.
    sleep_from: usize,
    /// This execution was aborted as sleep-set redundant (every enabled
    /// thread asleep past the forced prefix).
    redundant: bool,
    /// Recorded schedule: one entry per consumed step.
    trace: Vec<TraceStep>,
    /// Enabled set at the most recent grant, moved into the trace entry
    /// when the granted thread consumes its step.
    pending_enabled: Vec<usize>,
}

/// A shadow-heap violation as recorded in-session (label only; the
/// public [`ShadowViolation`] adds seed/schedule).
#[derive(Clone)]
struct ShadowRec {
    kind: ShadowKind,
    label: &'static str,
    step: usize,
}

pub(crate) struct Session {
    state: StdMutex<State>,
    cv: StdCondvar,
}

enum AtomKind {
    Load,
    Store,
    Rmw,
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Session {
    fn new(seed: u64, cfg: &Config, mode: RunMode) -> Arc<Self> {
        let mut rng = Rng::new(seed);
        let change_points = match cfg.policy {
            Policy::Pct { depth } => {
                sample_change_points(&mut rng, depth.saturating_sub(1), cfg.max_steps)
            }
            Policy::Random | Policy::Dpor => Vec::new(),
        };
        Arc::new(Session {
            state: StdMutex::new(State {
                seed,
                rng,
                policy: cfg.policy,
                max_steps: cfg.max_steps,
                steps: 0,
                stop_on_first_race: cfg.stop_on_first_race,
                aborted: false,
                budget_exhausted: false,
                deadlocked: false,
                active: None,
                last_ran: None,
                threads: Vec::new(),
                unfinished: 0,
                atomics: HashMap::new(),
                locks: HashMap::new(),
                cvs: HashMap::new(),
                datas: HashMap::new(),
                sc_clock: VectorClock::new(),
                races: Vec::new(),
                shadow: Vec::new(),
                panics: Vec::new(),
                change_points: change_points.into(),
                demote_next: (1u128 << 64) - 1,
                forced: mode.forced,
                forced_pos: 0,
                sleep: mode.sleep,
                sleep_from: mode.sleep_from,
                redundant: false,
                trace: Vec::new(),
                pending_enabled: Vec::new(),
            }),
            cv: StdCondvar::new(),
        })
    }

    /// Register a new checked thread; `parent` is `None` for the root.
    fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut st = lock_state(self);
        register_thread_in(&mut st, parent)
    }

    fn thread_finished(&self, me: usize, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = lock_state(self);
        st.threads[me].finished = true;
        st.threads[me].waiting = false;
        st.unfinished -= 1;
        if st.active == Some(me) {
            st.active = None;
        }
        if let Some(p) = panic {
            if !p.is::<SessionAbort>() {
                st.panics.push(p);
                // A dead thread can no longer order its past accesses
                // with anyone; stop exploring this interleaving.
                st.aborted = true;
            }
        }
        Self::schedule(&mut st);
        self.cv.notify_all();
    }

    /// Block (without consuming a scheduling step) until `idx` is parked
    /// at its first scheduling point — keeps the candidate set at every
    /// decision deterministic.
    fn wait_parked(&self, idx: usize) {
        let mut st = lock_state(self);
        while !st.threads[idx].waiting && !st.threads[idx].finished && !st.aborted {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Used by non-session threads (e.g. `JoinHandle::join` from outside
    /// the session) to await a checked thread.
    fn wait_finished(&self, idx: usize) {
        let mut st = lock_state(self);
        while !st.threads[idx].finished && !st.aborted {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn wait_all_finished(&self) {
        let mut st = lock_state(self);
        while st.unfinished > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pick the next thread to run, if no grant is outstanding. Also
    /// detects true deadlocks (every live thread parked and blocked).
    fn schedule(st: &mut State) {
        if st.aborted || st.active.is_some() {
            return;
        }
        // Under Random, condvar-blocked threads stay eligible: being
        // granted models a spurious wakeup. PCT keeps them blocked so
        // its priority guarantees are not washed out by wakeup spam.
        let spurious_cv_wakeups = matches!(st.policy, Policy::Random);
        let mut cands: Vec<usize> = Vec::new();
        for i in 0..st.threads.len() {
            let t = &st.threads[i];
            if !t.waiting || t.finished {
                continue;
            }
            let eligible = match t.blocked {
                None => true,
                Some(BlockedOn::Thread(target)) => st.threads[target].finished,
                Some(BlockedOn::Lock(_)) => false,
                Some(BlockedOn::Cv(_)) => spurious_cv_wakeups,
            };
            if eligible {
                cands.push(i);
            }
        }
        if cands.is_empty() {
            // If nothing is runnable and nothing is executing toward its
            // next scheduling point, the remaining threads wait on each
            // other forever: a deadlock.
            let running = st
                .threads
                .iter()
                .filter(|t| !t.finished && !t.waiting)
                .count();
            if running == 0 && st.unfinished > 0 {
                st.aborted = true;
                st.deadlocked = true;
            }
            return;
        }
        let pick = if st.forced.is_some() || st.policy == Policy::Dpor {
            // Forced mode: consume the schedule prefix, then fall back to
            // a deterministic default that skips sleeping threads.
            let mut pick = None;
            let forced_len = st.forced.as_ref().map_or(0, |f| f.len());
            while st.forced_pos < forced_len {
                let want = st.forced.as_ref().expect("forced mode")[st.forced_pos];
                st.forced_pos += 1;
                if cands.contains(&want) {
                    pick = Some(want);
                    break;
                }
                // Not enabled when its turn came (a minimized schedule
                // may have deleted the step that would have enabled it):
                // drop the entry and try the next.
            }
            match pick {
                Some(p) => p,
                None => {
                    let awake: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| !st.sleep.iter().any(|&(t, _, _)| t == c))
                        .collect();
                    if awake.is_empty() {
                        // Every enabled thread is asleep: any continuation
                        // is equivalent to an already-explored trace.
                        st.aborted = true;
                        st.redundant = true;
                        return;
                    }
                    // Keep the current thread running through straight-line
                    // code (shorter traces), but rotate on yields so spin
                    // loops make global progress.
                    match st.last_ran {
                        Some(last) if awake.contains(&last) && !st.threads[last].last_yield => last,
                        Some(last) => *awake.iter().find(|&&c| c > last).unwrap_or(&awake[0]),
                        None => awake[0],
                    }
                }
            }
        } else {
            match st.policy {
                Policy::Random => {
                    // Preemption bounding: usually let the last thread keep
                    // going when it wants to.
                    match st.last_ran {
                        Some(last) if cands.contains(&last) && st.rng.ratio(3, 4) => last,
                        _ => cands[st.rng.below(cands.len())],
                    }
                }
                Policy::Pct { .. } => {
                    // Apply any change points crossed since the last pick:
                    // demote the thread that was running below everyone.
                    while let Some(&p) = st.change_points.front() {
                        if p > st.steps {
                            break;
                        }
                        st.change_points.pop_front();
                        if let Some(last) = st.last_ran {
                            st.threads[last].priority = st.demote_next;
                            st.demote_next = st.demote_next.saturating_sub(1);
                        }
                    }
                    *cands
                        .iter()
                        .max_by_key(|&&i| st.threads[i].priority)
                        .expect("non-empty candidate set")
                }
                Policy::Dpor => unreachable!("Dpor sessions always run in forced mode"),
            }
        };
        st.pending_enabled = cands;
        st.active = Some(pick);
        st.last_ran = Some(pick);
    }
}

/// Register a new checked thread under an already-held state lock;
/// `parent` is `None` for the root.
fn register_thread_in(st: &mut State, parent: Option<usize>) -> usize {
    let idx = st.threads.len();
    let mut clock = match parent {
        Some(p) => {
            // Spawn edge: child starts after everything the parent
            // did so far; parent ticks so the spawn point is distinct.
            st.threads[p].clock.tick(p);
            st.threads[p].clock.clone()
        }
        None => VectorClock::new(),
    };
    clock.tick(idx);
    let priority = (1u128 << 64) + st.rng.next_u64() as u128;
    st.threads.push(ThreadSt {
        clock,
        waiting: false,
        finished: false,
        blocked: None,
        last_yield: false,
        priority,
    });
    st.unfinished += 1;
    idx
}

/// Amend the current trace entry with the executed operation and apply
/// the sleep-set wake rule: a sleeping thread whose recorded next
/// operation is dependent with `op` must become schedulable again.
fn note_op(st: &mut State, op: Op) {
    if let Some(t) = st.trace.last_mut() {
        t.op = op;
    }
    if st.trace.len() > st.sleep_from && !st.sleep.is_empty() {
        st.sleep.retain(|&(_, s, w)| !wakes(s, w, op));
    }
}

/// Record a shadow-heap lifecycle violation into the running session.
fn push_shadow(st: &mut State, kind: ShadowKind, label: &'static str) {
    let step = st.trace.len().saturating_sub(1);
    if st.shadow.len() < 64 {
        st.shadow.push(ShadowRec { kind, label, step });
    }
    if st.stop_on_first_race {
        st.aborted = true;
    }
}

/// Park at a scheduling point, wait for the grant, consume one step, and
/// run `f` (the instrumented operation + its clock bookkeeping) while
/// serialized. Panics with the session-abort payload when the session
/// aborted or the step budget is exhausted.
fn with_step<R>(sess: &Session, me: usize, f: impl FnOnce(&mut State, usize) -> R) -> R {
    let mut st = lock_state(sess);
    if st.aborted {
        drop(st);
        std::panic::panic_any(SessionAbort);
    }
    st.threads[me].waiting = true;
    if st.active == Some(me) {
        st.active = None;
    }
    Session::schedule(&mut st);
    sess.cv.notify_all();
    while st.active != Some(me) && !st.aborted {
        st = sess.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    if st.aborted {
        drop(st);
        std::panic::panic_any(SessionAbort);
    }
    st.threads[me].waiting = false;
    // Being granted wakes the thread: for Random-policy condvar waits
    // this is exactly a spurious wakeup.
    st.threads[me].blocked = None;
    st.steps += 1;
    if st.steps > st.max_steps {
        st.aborted = true;
        st.budget_exhausted = true;
        sess.cv.notify_all();
        drop(st);
        std::panic::panic_any(SessionAbort);
    }
    let enabled = std::mem::take(&mut st.pending_enabled);
    st.trace.push(TraceStep {
        thread: me,
        op: Op::NONE,
        enabled,
        watermark: loc_watermark(),
    });
    st.threads[me].last_yield = false;
    let r = f(&mut st, me);
    if st.aborted {
        // The operation set the abort flag (stop-on-first-race or a
        // detected deadlock): wake every parked thread so they unwind.
        sess.cv.notify_all();
    }
    r
}

// ---------------------------------------------------------------------------
// Instrumented-operation hooks (used by the facade modules)
// ---------------------------------------------------------------------------

fn record_atomic(st: &mut State, me: usize, loc: usize, kind: AtomKind, o: Ordering) {
    let op_kind = match kind {
        AtomKind::Load => OpKind::Load,
        AtomKind::Store => OpKind::Store,
        AtomKind::Rmw => OpKind::Rmw,
    };
    note_op(st, Op { loc, kind: op_kind });
    let State {
        threads,
        atomics,
        sc_clock,
        ..
    } = st;
    let clock = &mut threads[me].clock;
    clock.tick(me);
    let sync = atomics.entry(loc).or_default();
    match kind {
        AtomKind::Load => {
            if is_acquire(o) {
                clock.join(sync);
            }
        }
        AtomKind::Store => {
            if is_release(o) {
                *sync = clock.clone();
            } else {
                // A relaxed store breaks the release sequence: later
                // acquire loads observing it gain no edges.
                sync.clear();
            }
        }
        AtomKind::Rmw => {
            if is_acquire(o) {
                clock.join(sync);
            }
            if is_release(o) {
                sync.join(clock);
            }
            // A relaxed RMW neither contributes nor destroys: it extends
            // the release sequence of the store it read from (C++20
            // [atomics.order]), so `sync` is left intact.
        }
    }
    if o == Ordering::SeqCst {
        clock.join(sc_clock);
        sc_clock.join(clock);
    }
}

pub(crate) fn atomic_load<T>(slot: &LocSlot, o: Ordering, f: impl FnOnce() -> T) -> T {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_atomic(st, me, slot.id(), AtomKind::Load, o);
            f()
        }),
    }
}

pub(crate) fn atomic_store<T>(slot: &LocSlot, o: Ordering, f: impl FnOnce() -> T) -> T {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_atomic(st, me, slot.id(), AtomKind::Store, o);
            f()
        }),
    }
}

pub(crate) fn atomic_rmw<T>(slot: &LocSlot, o: Ordering, f: impl FnOnce() -> T) -> T {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_atomic(st, me, slot.id(), AtomKind::Rmw, o);
            f()
        }),
    }
}

/// Compare-exchange: records an RMW with `success` ordering when the
/// exchange succeeded, a load with `failure` ordering when it did not.
pub(crate) fn atomic_cas<T>(
    slot: &LocSlot,
    success: Ordering,
    failure: Ordering,
    f: impl FnOnce() -> Result<T, T>,
) -> Result<T, T> {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let r = f();
            let (kind, o) = match &r {
                Ok(_) => (AtomKind::Rmw, success),
                Err(_) => (AtomKind::Load, failure),
            };
            record_atomic(st, me, slot.id(), kind, o);
            r
        }),
    }
}

/// Memory fence. Only `SeqCst` fences get a semantics (the global SC
/// clock); weaker fences are recorded as plain steps. This is
/// conservative toward false *negatives* only.
pub(crate) fn fence_op(o: Ordering) {
    if let Some((s, me)) = session_for_op() {
        with_step(&s, me, |st, me| {
            note_op(
                st,
                Op {
                    loc: FENCE_LOC,
                    kind: OpKind::Sync,
                },
            );
            let State {
                threads, sc_clock, ..
            } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            if o == Ordering::SeqCst {
                clock.join(sc_clock);
                sc_clock.join(clock);
            }
        })
    }
}

fn record_data(
    st: &mut State,
    me: usize,
    loc: usize,
    is_write: bool,
    site: &'static Location<'static>,
) {
    note_op(
        st,
        Op {
            loc,
            kind: if is_write {
                OpKind::DataWrite
            } else {
                OpKind::DataRead
            },
        },
    );
    let step = st.trace.len().saturating_sub(1);
    let State {
        threads,
        datas,
        races,
        seed,
        aborted,
        stop_on_first_race,
        ..
    } = st;
    let clock = &mut threads[me].clock;
    let at = clock.tick(me);
    let d = datas.entry(loc).or_default();
    let mine = Access {
        thread: me,
        at,
        site,
    };
    let mut conflicts: Vec<(Access, RaceKind)> = Vec::new();
    if let Some(w) = &d.last_write {
        if w.thread != me && clock.get(w.thread) < w.at {
            let kind = if is_write {
                RaceKind::WriteWrite
            } else {
                RaceKind::WriteRead
            };
            conflicts.push((w.clone(), kind));
        }
    }
    if is_write {
        for r in &d.reads {
            if r.thread != me && clock.get(r.thread) < r.at {
                conflicts.push((r.clone(), RaceKind::ReadWrite));
            }
        }
        d.reads.clear();
        d.last_write = Some(mine.clone());
    } else {
        d.reads.retain(|r| r.thread != me);
        d.reads.push(mine.clone());
    }
    for (prior, kind) in conflicts {
        if races.len() < 64 {
            races.push(Race {
                seed: *seed,
                kind,
                first: AccessLabel::new(&prior),
                second: AccessLabel::new(&mine),
                schedule: None,
                step,
            });
        }
        if *stop_on_first_race {
            *aborted = true;
        }
    }
}

/// A plain-data access that first validates against the shadow-heap
/// oracle *inside the same scheduling step* (so a reclamation landing
/// between the check and the access cannot be missed). `validate` runs
/// serialized; a violation is recorded into the session, or panics when
/// no session is active.
#[track_caller]
pub(crate) fn data_access_validated<T>(
    loc: usize,
    is_write: bool,
    validate: impl FnOnce() -> Option<(ShadowKind, &'static str)>,
    f: impl FnOnce() -> T,
) -> T {
    let site = Location::caller();
    match session_for_op() {
        None => {
            if let Some((kind, label)) = validate() {
                panic!("shadow-heap violation outside a checker session: {kind:?} on `{label}`");
            }
            f()
        }
        Some((s, me)) => with_step(&s, me, |st, me| {
            if let Some((kind, label)) = validate() {
                push_shadow(st, kind, label);
            }
            record_data(st, me, loc, is_write, site);
            f()
        }),
    }
}

/// A shadow-heap reclamation event: a write-kind scheduling step on the
/// entry's location, so the explorer reorders it against tracked reads.
/// Outside a session the step is skipped; a violation then panics.
#[track_caller]
pub(crate) fn shadow_write_step(loc: usize, label: &'static str, viol: Option<ShadowKind>) {
    let site = Location::caller();
    match session_for_op() {
        None => {
            if let Some(kind) = viol {
                panic!("shadow-heap violation outside a checker session: {kind:?} on `{label}`");
            }
        }
        Some((s, me)) => with_step(&s, me, |st, me| {
            if let Some(kind) = viol {
                push_shadow(st, kind, label);
            }
            record_data(st, me, loc, true, site);
        }),
    }
}

/// Record a shadow-heap lifecycle violation that happened outside any
/// scheduling step (retire/leak transitions). Panics when no session is
/// active — the violation is real either way.
pub(crate) fn shadow_violation(kind: ShadowKind, label: &'static str) {
    match session_for_op() {
        None => panic!("shadow-heap violation outside a checker session: {kind:?} on `{label}`"),
        Some((s, _)) => {
            let mut st = lock_state(&s);
            push_shadow(&mut st, kind, label);
            if st.aborted {
                drop(st);
                s.cv.notify_all();
            }
        }
    }
}

#[track_caller]
pub(crate) fn data_read<T>(slot: &LocSlot, f: impl FnOnce() -> T) -> T {
    let site = Location::caller();
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_data(st, me, slot.id(), false, site);
            f()
        }),
    }
}

#[track_caller]
pub(crate) fn data_write<T>(slot: &LocSlot, f: impl FnOnce() -> T) -> T {
    let site = Location::caller();
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_data(st, me, slot.id(), true, site);
            f()
        }),
    }
}

/// One attempt to acquire a lock-like object; on success, joins the
/// lock's clock into the acquirer's.
pub(crate) fn lock_acquire_attempt<G>(slot: &LocSlot, f: impl FnOnce() -> Option<G>) -> Option<G> {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let g = f();
            note_op(
                st,
                Op {
                    loc: slot.id(),
                    kind: OpKind::Sync,
                },
            );
            if g.is_some() {
                let State { threads, locks, .. } = st;
                let clock = &mut threads[me].clock;
                clock.tick(me);
                clock.join(locks.entry(slot.id()).or_default());
            } else {
                st.threads[me].clock.tick(me);
                // Park until the holder releases (release clears this).
                st.threads[me].blocked = Some(BlockedOn::Lock(slot.id()));
            }
            g
        }),
    }
}

/// A single non-blocking acquisition attempt (`try_lock` semantics):
/// like [`lock_acquire_attempt`] but failure does not park the caller.
pub(crate) fn lock_try_once<G>(slot: &LocSlot, f: impl FnOnce() -> Option<G>) -> Option<G> {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let g = f();
            note_op(
                st,
                Op {
                    loc: slot.id(),
                    kind: OpKind::Sync,
                },
            );
            let State { threads, locks, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            if g.is_some() {
                clock.join(locks.entry(slot.id()).or_default());
            }
            g
        }),
    }
}

/// Release a lock-like object: joins the releaser's clock into the
/// lock's clock, then runs `f` (which drops the real guard).
pub(crate) fn lock_release<R>(slot: &LocSlot, f: impl FnOnce() -> R) -> R {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let loc = slot.id();
            note_op(
                st,
                Op {
                    loc,
                    kind: OpKind::Sync,
                },
            );
            let State { threads, locks, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            locks.entry(loc).or_default().join(clock);
            for t in threads.iter_mut() {
                if t.blocked == Some(BlockedOn::Lock(loc)) {
                    t.blocked = None;
                }
            }
            f()
        }),
    }
}

pub(crate) fn cv_notify(slot: &LocSlot, f: impl FnOnce()) {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let loc = slot.id();
            note_op(
                st,
                Op {
                    loc,
                    kind: OpKind::Sync,
                },
            );
            let State { threads, cvs, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            cvs.entry(loc).or_default().join(clock);
            for t in threads.iter_mut() {
                if t.blocked == Some(BlockedOn::Cv(loc)) {
                    t.blocked = None;
                }
            }
            f()
        }),
    }
}

/// First half of a modeled condvar wait, as one scheduling step: mark
/// the caller blocked on the condvar, release the mutex's clock (and its
/// lock-blocked waiters), and run `f` to drop the real guard.
pub(crate) fn cv_block_and_release(cv: &LocSlot, mutex: &LocSlot, f: impl FnOnce()) {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let cv_loc = cv.id();
            let mutex_loc = mutex.id();
            note_op(
                st,
                Op {
                    loc: cv_loc,
                    kind: OpKind::Sync,
                },
            );
            let State { threads, locks, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            locks.entry(mutex_loc).or_default().join(clock);
            for t in threads.iter_mut() {
                if t.blocked == Some(BlockedOn::Lock(mutex_loc)) {
                    t.blocked = None;
                }
            }
            threads[me].blocked = Some(BlockedOn::Cv(cv_loc));
            f()
        }),
    }
}

/// After a (modeled) condvar wakeup: join the condvar's clock.
pub(crate) fn cv_wake(slot: &LocSlot) {
    if let Some((s, me)) = session_for_op() {
        with_step(&s, me, |st, me| {
            note_op(
                st,
                Op {
                    loc: slot.id(),
                    kind: OpKind::Sync,
                },
            );
            let State { threads, cvs, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            clock.join(cvs.entry(slot.id()).or_default());
        })
    }
}

/// A pure scheduling point (facade `yield_now`, spin backoff, modeled
/// sleeps).
pub(crate) fn yield_step() {
    if let Some((s, me)) = session_for_op() {
        with_step(&s, me, |st, me| {
            note_op(
                st,
                Op {
                    loc: 0,
                    kind: OpKind::Yield,
                },
            );
            st.threads[me].clock.tick(me);
            st.threads[me].last_yield = true;
        })
    }
}

/// True when the calling thread is registered with a live session (used
/// by facade locks to pick the spin-try path over real blocking).
pub(crate) fn in_session() -> bool {
    session_for_op().is_some()
}

// ---------------------------------------------------------------------------
// Checked thread spawning (used by crate::thread)
// ---------------------------------------------------------------------------

pub(crate) struct CheckedSpawn {
    pub(crate) session: Arc<Session>,
    pub(crate) child: usize,
}

/// Register a child of the calling (registered) thread and return the
/// session handle to pass into the native thread. `None` when the caller
/// is not in a session. Spawning is itself a scheduling step so the
/// explorer sees the spawn edge (child clock starts at the parent's).
pub(crate) fn prepare_spawn() -> Option<CheckedSpawn> {
    let (session, parent) = session_for_op()?;
    let child = with_step(&session, parent, |st, me| {
        let child = register_thread_in(st, Some(me));
        note_op(
            st,
            Op {
                loc: child,
                kind: OpKind::Spawn,
            },
        );
        child
    });
    Some(CheckedSpawn { session, child })
}

/// Entry hook for the native child thread: adopt the session, park at
/// the first scheduling point, then run `f` under the schedule.
/// Returns `None` when the closure was unwound by a session abort.
pub(crate) fn run_child<T>(spawn: CheckedSpawn, f: impl FnOnce() -> T) -> Option<T> {
    let CheckedSpawn { session, child } = spawn;
    TLS_SESSION.with(|t| *t.borrow_mut() = Some((session.clone(), child)));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // First scheduling point: parks, which also signals the parent
        // that the candidate set now includes this thread.
        yield_step();
        f()
    }));
    TLS_SESSION.with(|t| *t.borrow_mut() = None);
    let out = match r {
        Ok(v) => {
            session.thread_finished(child, None);
            Some(v)
        }
        Err(p) => {
            session.thread_finished(child, Some(p));
            None
        }
    };
    // Hold the OS thread alive until the whole iteration is done: TLS
    // destructors of checked code (e.g. QSBR's registry cleanup) run at
    // OS-thread exit, outside instrumentation. Were the thread to exit
    // now, those destructors would mutate shared state concurrently with
    // the still-running schedule — nondeterministically and invisibly to
    // the race detector. After the iteration nothing is scheduled, so
    // the destructors can no longer interleave with checked code.
    session.wait_all_finished();
    out
}

/// Non-blocking, non-stepping query: has the checked thread finished?
pub(crate) fn peek_finished(session: &Arc<Session>, target: usize) -> bool {
    let st = lock_state(session);
    st.threads[target].finished
}

/// Parent-side barrier after spawning: wait until the child parked.
pub(crate) fn await_parked(spawn_session: &Arc<Session>, child: usize) {
    spawn_session.wait_parked(child);
}

/// One scheduled poll of a checked join: returns true (joining the
/// target's final clock) once the target finished.
pub(crate) fn join_poll(session: &Arc<Session>, target: usize) -> bool {
    match session_for_op() {
        Some((s, me)) if Arc::ptr_eq(&s, session) => with_step(&s, me, |st, me| {
            if st.threads[target].finished {
                note_op(
                    st,
                    Op {
                        loc: target,
                        kind: OpKind::Join,
                    },
                );
                let final_clock = st.threads[target].clock.clone();
                let clock = &mut st.threads[me].clock;
                clock.tick(me);
                clock.join(&final_clock);
                true
            } else {
                // Park until the target finishes (`thread_finished` on
                // the target makes this thread eligible again).
                st.threads[me].blocked = Some(BlockedOn::Thread(target));
                false
            }
        }),
        _ => {
            // Joiner is outside the session (or in another): block
            // without consuming schedule steps.
            session.wait_finished(target);
            true
        }
    }
}

// ---------------------------------------------------------------------------
// Public API: Config / Checker / Report
// ---------------------------------------------------------------------------

/// Checker configuration. All fields have conservative defaults; the
/// important contract is that a `(Config, seed)` pair fully determines
/// the explored schedule.
#[derive(Clone, Debug)]
pub struct Config {
    /// First seed; iteration `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Number of schedules to explore.
    pub iterations: usize,
    /// Per-iteration scheduling-step budget (aborts livelocks).
    pub max_steps: usize,
    /// Schedule policy.
    pub policy: Policy,
    /// Abort an iteration at its first detected race.
    pub stop_on_first_race: bool,
    /// Under [`Policy::Dpor`]: skip backtrack branches whose schedule
    /// prefix would exceed this many preemptions (a context switch away
    /// from a still-enabled thread). `None` explores without a bound;
    /// with a bound the exploration is knowingly incomplete and the
    /// skipped branches are counted in [`DporReport::pruned`].
    pub preemption_bound: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            base_seed: 0x5eed,
            iterations: 32,
            max_steps: 20_000,
            policy: Policy::Random,
            stop_on_first_race: false,
            preemption_bound: None,
        }
    }
}

/// How two accesses conflicted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Prior write, current write.
    WriteWrite,
    /// Prior write, current read.
    WriteRead,
    /// Prior read, current write.
    ReadWrite,
}

/// One endpoint of a detected race.
#[derive(Clone, Debug)]
pub struct AccessLabel {
    /// Session-local thread index (0 = the root closure's thread).
    pub thread: usize,
    /// `file:line:column` of the access.
    pub site: String,
}

impl AccessLabel {
    fn new(a: &Access) -> Self {
        AccessLabel {
            thread: a.thread,
            site: format!("{}:{}:{}", a.site.file(), a.site.line(), a.site.column()),
        }
    }
}

/// A detected data race, with the seed that reproduces the schedule —
/// or, under [`Policy::Dpor`], the minimized serialized schedule itself.
#[derive(Clone, Debug)]
pub struct Race {
    pub seed: u64,
    pub kind: RaceKind,
    pub first: AccessLabel,
    pub second: AccessLabel,
    /// Minimized counterexample schedule (DPOR / schedule replays only);
    /// pass it to [`Checker::replay`] to re-run the exact interleaving.
    pub schedule: Option<String>,
    /// Trace index of the second access (minimization anchor).
    pub(crate) step: usize,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (a, b) = match self.kind {
            RaceKind::WriteWrite => ("write", "write"),
            RaceKind::WriteRead => ("write", "read"),
            RaceKind::ReadWrite => ("read", "write"),
        };
        let repro: String = match &self.schedule {
            Some(s) => format!("schedule \"{s}\""),
            None => format!("seed {:#x}", self.seed),
        };
        write!(
            f,
            "data race ({repro}): {} at {} (thread {}) is unordered with {} at {} (thread {})",
            a, self.first.site, self.first.thread, b, self.second.site, self.second.thread
        )
    }
}

/// A shadow-heap lifecycle violation (see [`crate::shadow`]), with its
/// reproducer: the seed under sampling policies, the minimized schedule
/// under [`Policy::Dpor`].
#[derive(Clone, Debug)]
pub struct ShadowViolation {
    pub seed: u64,
    pub kind: ShadowKind,
    /// The tracked object's label (as passed to `TrackedCell::new` /
    /// `shadow::alloc`).
    pub label: String,
    /// Minimized counterexample schedule (DPOR / schedule replays only).
    pub schedule: Option<String>,
}

impl std::fmt::Display for ShadowViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let repro: String = match &self.schedule {
            Some(s) => format!("schedule \"{s}\""),
            None => format!("seed {:#x}", self.seed),
        };
        write!(
            f,
            "shadow-heap {:?} ({repro}) on `{}`",
            self.kind, self.label
        )
    }
}

/// A retired-but-never-reclaimed object observed at session end.
#[derive(Clone, Debug)]
pub struct ShadowLeak {
    /// Seed of the leaking iteration (0 under [`Policy::Dpor`]).
    pub seed: u64,
    pub label: String,
    pub bytes: usize,
}

/// A step-budget abort, with both reproducers: the seed and the
/// serialized schedule prefix that ran away.
#[derive(Clone, Debug)]
pub struct BudgetAbort {
    pub seed: u64,
    /// Steps consumed when the budget tripped.
    pub steps: usize,
    /// RLE-serialized schedule prefix (possibly truncated for display;
    /// the seed replays the full run under sampling policies).
    pub schedule_prefix: String,
}

impl std::fmt::Display for BudgetAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step budget exhausted (seed {:#x}, {} steps); schedule prefix: {}",
            self.seed, self.steps, self.schedule_prefix
        )
    }
}

/// Aggregate result of a checker run.
#[derive(Debug, Default)]
pub struct Report {
    /// Iterations (schedules) actually executed.
    pub iterations: usize,
    /// All detected races (bounded per iteration), in detection order.
    pub races: Vec<Race>,
    /// Shadow-heap lifecycle violations, in detection order.
    pub shadow: Vec<ShadowViolation>,
    /// Retired-but-never-reclaimed objects at session end (reported, not
    /// failed: leak schemes retire-and-forget by design).
    pub leaks: Vec<ShadowLeak>,
    /// Iterations that blew the step budget, with both reproducers.
    pub budget_exhausted: Vec<BudgetAbort>,
    /// Seeds whose iteration ended with every live thread blocked.
    pub deadlocks: Vec<u64>,
    /// Exploration accounting under [`Policy::Dpor`].
    pub dpor: Option<crate::dpor::DporReport>,
}

impl Report {
    /// No races and no shadow-heap violations detected.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.shadow.is_empty()
    }

    pub fn first_race(&self) -> Option<&Race> {
        self.races.first()
    }

    /// First replayable counterexample schedule, if any failure carries
    /// one (DPOR mode attaches a minimized schedule to every failure).
    pub fn first_schedule(&self) -> Option<&str> {
        self.races
            .iter()
            .filter_map(|r| r.schedule.as_deref())
            .chain(self.shadow.iter().filter_map(|s| s.schedule.as_deref()))
            .next()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "checker: {} iterations, {} race(s), {} shadow violation(s), {} leak(s), {} budget-exhausted, {} deadlocked",
            self.iterations,
            self.races.len(),
            self.shadow.len(),
            self.leaks.len(),
            self.budget_exhausted.len(),
            self.deadlocks.len()
        )?;
        if let Some(d) = &self.dpor {
            writeln!(f, "  {d}")?;
        }
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        for s in &self.shadow {
            writeln!(f, "  {s}")?;
        }
        for l in &self.leaks {
            writeln!(
                f,
                "  leak: `{}` ({} bytes, seed {:#x})",
                l.label, l.bytes, l.seed
            )?;
        }
        for b in &self.budget_exhausted {
            writeln!(f, "  {b}")?;
        }
        Ok(())
    }
}

/// Reproducer accepted by [`Checker::replay`]: a seed (sampling
/// policies) or a serialized schedule string (DPOR counterexamples).
#[derive(Clone, Debug)]
pub enum ReplayToken {
    Seed(u64),
    Schedule(String),
}

impl From<u64> for ReplayToken {
    fn from(seed: u64) -> Self {
        ReplayToken::Seed(seed)
    }
}

impl From<&str> for ReplayToken {
    fn from(s: &str) -> Self {
        ReplayToken::Schedule(s.to_string())
    }
}

impl From<String> for ReplayToken {
    fn from(s: String) -> Self {
        ReplayToken::Schedule(s)
    }
}

/// The deterministic checker. See the module docs.
pub struct Checker {
    config: Config,
}

impl Checker {
    pub fn new(config: Config) -> Self {
        Checker { config }
    }

    /// Explore schedules of `f`: `config.iterations` seeded schedules
    /// under the sampling policies, or up to `config.iterations`
    /// DPOR-derived executions under [`Policy::Dpor`]. The closure runs
    /// once per iteration on a fresh registered root thread; any thread
    /// it spawns through [`crate::thread::spawn`] joins the schedule.
    /// Panics from the closure (assertion failures) are re-raised here
    /// after the iteration's threads wind down.
    pub fn run<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        match self.config.policy {
            Policy::Dpor => self.run_dpor(f),
            _ => self.run_seeded(f),
        }
    }

    fn run_seeded(&self, f: Arc<dyn Fn() + Send + Sync>) -> Report {
        let mut report = Report::default();
        for i in 0..self.config.iterations {
            let seed = self.config.base_seed.wrapping_add(i as u64);
            let mut outcome = Self::run_one(seed, &self.config, RunMode::seeded(), f.clone());
            report.iterations += 1;
            let had_failure = !outcome.races.is_empty() || !outcome.shadow.is_empty();
            let panic = outcome.panic_taken();
            outcome.fold_into(&mut report, seed, None);
            if let Some(p) = panic {
                std::panic::resume_unwind(p);
            }
            if had_failure && self.config.stop_on_first_race {
                break;
            }
        }
        report
    }

    /// Exhaustive source-DPOR exploration: run, derive backtrack points
    /// from the trace's dependence races, re-run with forced schedule
    /// prefixes, prune sleep-set-redundant continuations — until no
    /// unexplored branch remains or the execution budget
    /// (`config.iterations`) is spent. Every failure gets a minimized
    /// schedule attached, replayable via [`Checker::replay`].
    fn run_dpor(&self, f: Arc<dyn Fn() + Send + Sync>) -> Report {
        let mut explorer = dpor::Explorer::new(self.config.preemption_bound);
        let mut report = Report::default();
        let mut complete = false;
        // Pin location-id allocation so every execution of this
        // exploration assigns identical ids to the (re-created) facade
        // objects — sleep/done sets match ops across executions by loc.
        let loc_base = loc_watermark();
        loop {
            if report.iterations >= self.config.iterations {
                break;
            }
            let Some(run) = explorer.next_run() else {
                complete = true;
                break;
            };
            reset_locs(loc_base);
            let dbg = std::env::var_os("RCUARRAY_DPOR_DEBUG").is_some();
            if dbg {
                eprintln!(
                    "dpor run {}: sched={:?} sleep={:?} from={}",
                    report.iterations, run.schedule, run.sleep, run.sleep_from
                );
            }
            let mode = RunMode::forced(run.schedule, run.sleep, run.sleep_from);
            let mut outcome = Self::run_one(0, &self.config, mode, f.clone());
            report.iterations += 1;
            if dbg {
                let tr: Vec<(usize, OpKind, usize)> = outcome
                    .trace
                    .iter()
                    .map(|t| (t.thread, t.op.kind, t.op.loc))
                    .collect();
                eprintln!(
                    "  -> redundant={} races={} trace={:?}",
                    outcome.redundant,
                    outcome.races.len(),
                    tr
                );
            }
            explorer.integrate(&outcome.trace, outcome.redundant);
            let full: Vec<usize> = outcome.trace.iter().map(|t| t.thread).collect();
            let had_failure = !outcome.races.is_empty() || !outcome.shadow.is_empty();
            let schedule = if had_failure {
                // Truncate at the last failing step, then shrink while the
                // failure still reproduces.
                let anchor = outcome
                    .races
                    .iter()
                    .map(|r| r.step)
                    .chain(outcome.shadow.iter().map(|s| s.step))
                    .max()
                    .expect("failing outcome has a step");
                let prefix = &full[..(anchor + 1).min(full.len())];
                let minimized = dpor::minimize(prefix, &|sched| {
                    Self::schedule_fails(&self.config, sched, f.clone())
                });
                Some(dpor::serialize_schedule(&minimized))
            } else {
                None
            };
            let panic = outcome.panic_taken();
            outcome.fold_into(&mut report, 0, schedule);
            if let Some(p) = panic {
                eprintln!(
                    "checker: panic under Policy::Dpor; failing schedule: {}",
                    dpor::serialize_schedule(&full)
                );
                std::panic::resume_unwind(p);
            }
            if had_failure && self.config.stop_on_first_race {
                break;
            }
        }
        let mut stats = explorer.stats();
        stats.complete = complete;
        report.dpor = Some(stats);
        report
    }

    /// Minimizer predicate: does this forced schedule (with round-robin
    /// default past the prefix) still exhibit a failure?
    fn schedule_fails(cfg: &Config, sched: &[usize], f: Arc<dyn Fn() + Send + Sync>) -> bool {
        let mode = RunMode::forced(sched.to_vec(), Vec::new(), usize::MAX);
        let o = Self::run_one(0, cfg, mode, f);
        !o.races.is_empty() || !o.shadow.is_empty() || o.panic.is_some()
    }

    /// Re-run a single reproducer: a seed (as reported by [`Race::seed`])
    /// or a serialized schedule string (as reported by
    /// [`Race::schedule`] / [`ShadowViolation::schedule`] under
    /// [`Policy::Dpor`]).
    pub fn replay<F>(token: impl Into<ReplayToken>, config: &Config, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match token.into() {
            ReplayToken::Seed(seed) => Checker::new(Config {
                base_seed: seed,
                iterations: 1,
                ..config.clone()
            })
            .run(f),
            ReplayToken::Schedule(s) => {
                let schedule = dpor::parse_schedule(&s)
                    .unwrap_or_else(|e| panic!("invalid schedule string {s:?}: {e}"));
                let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
                let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
                let cfg = Config {
                    policy: Policy::Dpor,
                    ..config.clone()
                };
                let mut outcome = Self::run_one(
                    0,
                    &cfg,
                    RunMode::forced(schedule, Vec::new(), usize::MAX),
                    f,
                );
                let mut report = Report {
                    iterations: 1,
                    ..Report::default()
                };
                let panic = outcome.panic_taken();
                outcome.fold_into(&mut report, 0, Some(s));
                if let Some(p) = panic {
                    std::panic::resume_unwind(p);
                }
                report
            }
        }
    }

    fn run_one(
        seed: u64,
        cfg: &Config,
        mode: RunMode,
        f: Arc<dyn Fn() + Send + Sync>,
    ) -> IterOutcome {
        let session = Session::new(seed, cfg, mode);
        ACTIVE_SESSIONS.fetch_add(1, StdOrdering::SeqCst);
        let epoch = crate::shadow::begin_session();
        let root = session.register_thread(None);
        let s2 = session.clone();
        let handle = std::thread::Builder::new()
            .name(format!("checked-root-{seed:#x}"))
            .spawn(move || {
                let spawn = CheckedSpawn {
                    session: s2,
                    child: root,
                };
                run_child(spawn, move || f());
            })
            .expect("spawn checked root");
        session.wait_all_finished();
        let _ = handle.join();
        ACTIVE_SESSIONS.fetch_sub(1, StdOrdering::SeqCst);
        let leaks = crate::shadow::end_session(epoch);
        let mut st = lock_state(&session);
        let outcome = IterOutcome {
            races: std::mem::take(&mut st.races),
            shadow: std::mem::take(&mut st.shadow),
            leaks,
            budget_exhausted: st.budget_exhausted,
            deadlocked: st.deadlocked,
            redundant: st.redundant,
            steps: st.steps,
            trace: std::mem::take(&mut st.trace),
            panic: st.panics.drain(..).next(),
        };
        drop(st);
        outcome
    }
}

struct IterOutcome {
    races: Vec<Race>,
    shadow: Vec<ShadowRec>,
    /// `(label, bytes)` of retired-but-never-reclaimed shadow entries.
    leaks: Vec<(String, usize)>,
    budget_exhausted: bool,
    deadlocked: bool,
    redundant: bool,
    steps: usize,
    trace: Vec<TraceStep>,
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

impl IterOutcome {
    /// Merge this iteration into the aggregate report, attaching the
    /// reproducers (`seed` always; `schedule` under DPOR / replays).
    fn fold_into(self, report: &mut Report, seed: u64, schedule: Option<String>) {
        for mut r in self.races {
            r.schedule = schedule.clone();
            report.races.push(r);
        }
        for s in self.shadow {
            report.shadow.push(ShadowViolation {
                seed,
                kind: s.kind,
                label: s.label.to_string(),
                schedule: schedule.clone(),
            });
        }
        for (label, bytes) in self.leaks {
            report.leaks.push(ShadowLeak { seed, label, bytes });
        }
        if self.budget_exhausted {
            let threads: Vec<usize> = self.trace.iter().map(|t| t.thread).collect();
            report.budget_exhausted.push(BudgetAbort {
                seed,
                steps: self.steps,
                schedule_prefix: dpor::serialize_schedule_capped(&threads, 4096),
            });
        }
        if self.deadlocked {
            report.deadlocks.push(seed);
        }
    }

    /// Take the panic payload out before `fold_into` consumes `self`.
    fn panic_taken(&mut self) -> Option<Box<dyn std::any::Any + Send + 'static>> {
        self.panic.take()
    }
}
