//! The deterministic concurrency checker.
//!
//! A [`Checker`] runs a closure many times, once per seed. Each run is a
//! *session*: threads spawned through [`crate::thread::spawn`] register
//! with the session, and every instrumented operation (facade atomics,
//! locks, [`crate::cell::CheckedCell`] accesses) becomes a scheduling
//! point. The session serializes execution — exactly one registered
//! thread runs between two scheduling points — and the schedule is chosen
//! by a seeded policy ([`crate::sched::Policy`]), so any interleaving the
//! checker explores can be replayed from its seed alone.
//!
//! On top of the schedule the session maintains FastTrack-style
//! happens-before state (see [`crate::clock`]):
//!
//! * each thread carries a vector clock, ticked at every operation;
//! * each atomic location carries a *sync clock*: release stores replace
//!   it with the writer's clock, release RMWs join into it (release
//!   sequences), relaxed stores clear it, and acquire loads/RMWs join it
//!   into the reader's clock;
//! * `SeqCst` operations and fences additionally join through a global SC
//!   clock (this can only add edges, i.e. hide races — never invent one);
//! * mutexes, rwlocks and condvars carry clocks joined on acquire/release;
//! * plain-data accesses via `CheckedCell` are checked: two conflicting
//!   accesses with incomparable clocks are reported as a data race with
//!   both source locations and the reproducing seed.
//!
//! Threads never truly block inside a session: facade locks spin through
//! scheduling points, condvar waits are modeled as spurious wakeups, and
//! a step budget aborts runaway interleavings deterministically.

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::clock::VectorClock;
use crate::sched::{sample_change_points, Policy, Rng};

pub use std::sync::atomic::Ordering;

// ---------------------------------------------------------------------------
// Global session plumbing
// ---------------------------------------------------------------------------

/// Fast-path guard: when zero, no session exists anywhere in the process
/// and every instrumented operation falls through to the plain one.
static ACTIVE_SESSIONS: StdAtomicUsize = StdAtomicUsize::new(0);

/// Location ids are global and monotonic, lazily stamped into each
/// facade object on first checked access. Fresh objects always get fresh
/// ids, so address reuse across (or within) sessions cannot alias state.
static NEXT_LOC_ID: StdAtomicUsize = StdAtomicUsize::new(1);

std::thread_local! {
    static TLS_SESSION: std::cell::RefCell<Option<(Arc<Session>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// One checker session at a time per process: sessions serialize their
/// registered threads, and interleaving two sessions' real threads would
/// make wall-clock behavior (not correctness) noisy.
static RUN_LOCK: StdMutex<()> = StdMutex::new(());

fn lock_state(sess: &Session) -> StdMutexGuard<'_, State> {
    sess.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Panic payload used to unwind registered threads when a session aborts
/// (step budget exceeded, or stop-on-first-race). Swallowed by the spawn
/// wrapper; never surfaces to user code as a test failure.
struct SessionAbort;

/// Per-object slot for the lazily assigned location id.
pub struct LocSlot(StdAtomicUsize);

impl LocSlot {
    #[allow(clippy::new_without_default)] // mirrors atomic `new`; always const-constructed
    pub const fn new() -> Self {
        LocSlot(StdAtomicUsize::new(0))
    }

    fn id(&self) -> usize {
        let v = self.0.load(StdOrdering::Relaxed);
        if v != 0 {
            return v;
        }
        let fresh = NEXT_LOC_ID.fetch_add(1, StdOrdering::Relaxed);
        match self
            .0
            .compare_exchange(0, fresh, StdOrdering::Relaxed, StdOrdering::Relaxed)
        {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }
}

/// The session + thread index of the caller, if the caller is a thread
/// registered with a live session and not currently unwinding. Returns
/// `None` otherwise — the caller must then perform the plain operation.
fn session_for_op() -> Option<(Arc<Session>, usize)> {
    if ACTIVE_SESSIONS.load(StdOrdering::Relaxed) == 0 || std::thread::panicking() {
        return None;
    }
    TLS_SESSION.with(|t| t.borrow().clone())
}

// ---------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------

/// What a parked thread is waiting for. Blocked threads are not schedule
/// candidates until the condition clears (under `Policy::Random`,
/// condvar waits stay eligible — modeling spurious wakeups).
#[derive(Clone, Copy, PartialEq, Eq)]
enum BlockedOn {
    /// `JoinHandle::join` on a checked thread.
    Thread(usize),
    /// A facade lock (by location id); cleared on release.
    Lock(usize),
    /// A facade condvar (by location id); cleared on notify.
    Cv(usize),
}

struct ThreadSt {
    clock: VectorClock,
    /// Parked at a scheduling point, waiting for the grant.
    waiting: bool,
    finished: bool,
    blocked: Option<BlockedOn>,
    /// PCT priority; initial values live in `[2^64, 2^65)`, demotions
    /// count down from `2^64 - 1`, so any demoted thread ranks below any
    /// undemoted one and successive demotions rank lower still.
    priority: u128,
}

#[derive(Default)]
struct DataState {
    last_write: Option<Access>,
    /// Reads since the last write (one entry per reading thread).
    reads: Vec<Access>,
}

#[derive(Clone)]
struct Access {
    thread: usize,
    /// The accessor's own clock component at the access.
    at: u64,
    site: &'static Location<'static>,
}

struct State {
    seed: u64,
    rng: Rng,
    policy: Policy,
    max_steps: usize,
    steps: usize,
    stop_on_first_race: bool,
    aborted: bool,
    budget_exhausted: bool,
    deadlocked: bool,
    /// Thread currently granted execution (runs until its next
    /// scheduling point).
    active: Option<usize>,
    last_ran: Option<usize>,
    threads: Vec<ThreadSt>,
    unfinished: usize,
    /// Sync clocks for atomic locations.
    atomics: HashMap<usize, VectorClock>,
    /// Clocks for mutexes / rwlocks.
    locks: HashMap<usize, VectorClock>,
    /// Clocks for condvars.
    cvs: HashMap<usize, VectorClock>,
    /// Plain-data (CheckedCell) access history.
    datas: HashMap<usize, DataState>,
    /// Global SC order clock.
    sc_clock: VectorClock,
    races: Vec<Race>,
    panics: Vec<Box<dyn std::any::Any + Send + 'static>>,
    /// PCT change points (ascending step numbers) not yet applied.
    change_points: std::collections::VecDeque<usize>,
    demote_next: u128,
}

pub(crate) struct Session {
    state: StdMutex<State>,
    cv: StdCondvar,
}

enum AtomKind {
    Load,
    Store,
    Rmw,
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Session {
    fn new(seed: u64, cfg: &Config) -> Arc<Self> {
        let mut rng = Rng::new(seed);
        let change_points = match cfg.policy {
            Policy::Pct { depth } => {
                sample_change_points(&mut rng, depth.saturating_sub(1), cfg.max_steps)
            }
            Policy::Random => Vec::new(),
        };
        Arc::new(Session {
            state: StdMutex::new(State {
                seed,
                rng,
                policy: cfg.policy,
                max_steps: cfg.max_steps,
                steps: 0,
                stop_on_first_race: cfg.stop_on_first_race,
                aborted: false,
                budget_exhausted: false,
                deadlocked: false,
                active: None,
                last_ran: None,
                threads: Vec::new(),
                unfinished: 0,
                atomics: HashMap::new(),
                locks: HashMap::new(),
                cvs: HashMap::new(),
                datas: HashMap::new(),
                sc_clock: VectorClock::new(),
                races: Vec::new(),
                panics: Vec::new(),
                change_points: change_points.into(),
                demote_next: (1u128 << 64) - 1,
            }),
            cv: StdCondvar::new(),
        })
    }

    /// Register a new checked thread; `parent` is `None` for the root.
    fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut st = lock_state(self);
        let idx = st.threads.len();
        let mut clock = match parent {
            Some(p) => {
                // Spawn edge: child starts after everything the parent
                // did so far; parent ticks so the spawn point is distinct.
                st.threads[p].clock.tick(p);
                st.threads[p].clock.clone()
            }
            None => VectorClock::new(),
        };
        clock.tick(idx);
        let priority = (1u128 << 64) + st.rng.next_u64() as u128;
        st.threads.push(ThreadSt {
            clock,
            waiting: false,
            finished: false,
            blocked: None,
            priority,
        });
        st.unfinished += 1;
        idx
    }

    fn thread_finished(&self, me: usize, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = lock_state(self);
        st.threads[me].finished = true;
        st.threads[me].waiting = false;
        st.unfinished -= 1;
        if st.active == Some(me) {
            st.active = None;
        }
        if let Some(p) = panic {
            if !p.is::<SessionAbort>() {
                st.panics.push(p);
                // A dead thread can no longer order its past accesses
                // with anyone; stop exploring this interleaving.
                st.aborted = true;
            }
        }
        Self::schedule(&mut st);
        self.cv.notify_all();
    }

    /// Block (without consuming a scheduling step) until `idx` is parked
    /// at its first scheduling point — keeps the candidate set at every
    /// decision deterministic.
    fn wait_parked(&self, idx: usize) {
        let mut st = lock_state(self);
        while !st.threads[idx].waiting && !st.threads[idx].finished && !st.aborted {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Used by non-session threads (e.g. `JoinHandle::join` from outside
    /// the session) to await a checked thread.
    fn wait_finished(&self, idx: usize) {
        let mut st = lock_state(self);
        while !st.threads[idx].finished && !st.aborted {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn wait_all_finished(&self) {
        let mut st = lock_state(self);
        while st.unfinished > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pick the next thread to run, if no grant is outstanding. Also
    /// detects true deadlocks (every live thread parked and blocked).
    fn schedule(st: &mut State) {
        if st.aborted || st.active.is_some() {
            return;
        }
        // Under Random, condvar-blocked threads stay eligible: being
        // granted models a spurious wakeup. PCT keeps them blocked so
        // its priority guarantees are not washed out by wakeup spam.
        let spurious_cv_wakeups = matches!(st.policy, Policy::Random);
        let mut cands: Vec<usize> = Vec::new();
        for i in 0..st.threads.len() {
            let t = &st.threads[i];
            if !t.waiting || t.finished {
                continue;
            }
            let eligible = match t.blocked {
                None => true,
                Some(BlockedOn::Thread(target)) => st.threads[target].finished,
                Some(BlockedOn::Lock(_)) => false,
                Some(BlockedOn::Cv(_)) => spurious_cv_wakeups,
            };
            if eligible {
                cands.push(i);
            }
        }
        if cands.is_empty() {
            // If nothing is runnable and nothing is executing toward its
            // next scheduling point, the remaining threads wait on each
            // other forever: a deadlock.
            let running = st
                .threads
                .iter()
                .filter(|t| !t.finished && !t.waiting)
                .count();
            if running == 0 && st.unfinished > 0 {
                st.aborted = true;
                st.deadlocked = true;
            }
            return;
        }
        let pick = match st.policy {
            Policy::Random => {
                // Preemption bounding: usually let the last thread keep
                // going when it wants to.
                match st.last_ran {
                    Some(last) if cands.contains(&last) && st.rng.ratio(3, 4) => last,
                    _ => cands[st.rng.below(cands.len())],
                }
            }
            Policy::Pct { .. } => {
                // Apply any change points crossed since the last pick:
                // demote the thread that was running below everyone.
                while let Some(&p) = st.change_points.front() {
                    if p > st.steps {
                        break;
                    }
                    st.change_points.pop_front();
                    if let Some(last) = st.last_ran {
                        st.threads[last].priority = st.demote_next;
                        st.demote_next = st.demote_next.saturating_sub(1);
                    }
                }
                *cands
                    .iter()
                    .max_by_key(|&&i| st.threads[i].priority)
                    .expect("non-empty candidate set")
            }
        };
        st.active = Some(pick);
        st.last_ran = Some(pick);
    }
}

/// Park at a scheduling point, wait for the grant, consume one step, and
/// run `f` (the instrumented operation + its clock bookkeeping) while
/// serialized. Panics with the session-abort payload when the session
/// aborted or the step budget is exhausted.
fn with_step<R>(sess: &Session, me: usize, f: impl FnOnce(&mut State, usize) -> R) -> R {
    let mut st = lock_state(sess);
    if st.aborted {
        drop(st);
        std::panic::panic_any(SessionAbort);
    }
    st.threads[me].waiting = true;
    if st.active == Some(me) {
        st.active = None;
    }
    Session::schedule(&mut st);
    sess.cv.notify_all();
    while st.active != Some(me) && !st.aborted {
        st = sess.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    if st.aborted {
        drop(st);
        std::panic::panic_any(SessionAbort);
    }
    st.threads[me].waiting = false;
    // Being granted wakes the thread: for Random-policy condvar waits
    // this is exactly a spurious wakeup.
    st.threads[me].blocked = None;
    st.steps += 1;
    if st.steps > st.max_steps {
        st.aborted = true;
        st.budget_exhausted = true;
        sess.cv.notify_all();
        drop(st);
        std::panic::panic_any(SessionAbort);
    }
    let r = f(&mut st, me);
    if st.aborted {
        // The operation set the abort flag (stop-on-first-race or a
        // detected deadlock): wake every parked thread so they unwind.
        sess.cv.notify_all();
    }
    r
}

// ---------------------------------------------------------------------------
// Instrumented-operation hooks (used by the facade modules)
// ---------------------------------------------------------------------------

fn record_atomic(st: &mut State, me: usize, loc: usize, kind: AtomKind, o: Ordering) {
    let State {
        threads,
        atomics,
        sc_clock,
        ..
    } = st;
    let clock = &mut threads[me].clock;
    clock.tick(me);
    let sync = atomics.entry(loc).or_default();
    match kind {
        AtomKind::Load => {
            if is_acquire(o) {
                clock.join(sync);
            }
        }
        AtomKind::Store => {
            if is_release(o) {
                *sync = clock.clone();
            } else {
                // A relaxed store breaks the release sequence: later
                // acquire loads observing it gain no edges.
                sync.clear();
            }
        }
        AtomKind::Rmw => {
            if is_acquire(o) {
                clock.join(sync);
            }
            if is_release(o) {
                sync.join(clock);
            }
            // A relaxed RMW neither contributes nor destroys: it extends
            // the release sequence of the store it read from (C++20
            // [atomics.order]), so `sync` is left intact.
        }
    }
    if o == Ordering::SeqCst {
        clock.join(sc_clock);
        sc_clock.join(clock);
    }
}

pub(crate) fn atomic_load<T>(slot: &LocSlot, o: Ordering, f: impl FnOnce() -> T) -> T {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_atomic(st, me, slot.id(), AtomKind::Load, o);
            f()
        }),
    }
}

pub(crate) fn atomic_store<T>(slot: &LocSlot, o: Ordering, f: impl FnOnce() -> T) -> T {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_atomic(st, me, slot.id(), AtomKind::Store, o);
            f()
        }),
    }
}

pub(crate) fn atomic_rmw<T>(slot: &LocSlot, o: Ordering, f: impl FnOnce() -> T) -> T {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_atomic(st, me, slot.id(), AtomKind::Rmw, o);
            f()
        }),
    }
}

/// Compare-exchange: records an RMW with `success` ordering when the
/// exchange succeeded, a load with `failure` ordering when it did not.
pub(crate) fn atomic_cas<T>(
    slot: &LocSlot,
    success: Ordering,
    failure: Ordering,
    f: impl FnOnce() -> Result<T, T>,
) -> Result<T, T> {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let r = f();
            let (kind, o) = match &r {
                Ok(_) => (AtomKind::Rmw, success),
                Err(_) => (AtomKind::Load, failure),
            };
            record_atomic(st, me, slot.id(), kind, o);
            r
        }),
    }
}

/// Memory fence. Only `SeqCst` fences get a semantics (the global SC
/// clock); weaker fences are recorded as plain steps. This is
/// conservative toward false *negatives* only.
pub(crate) fn fence_op(o: Ordering) {
    if let Some((s, me)) = session_for_op() {
        with_step(&s, me, |st, me| {
            let State {
                threads, sc_clock, ..
            } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            if o == Ordering::SeqCst {
                clock.join(sc_clock);
                sc_clock.join(clock);
            }
        })
    }
}

fn record_data(
    st: &mut State,
    me: usize,
    loc: usize,
    is_write: bool,
    site: &'static Location<'static>,
) {
    let State {
        threads,
        datas,
        races,
        seed,
        aborted,
        stop_on_first_race,
        ..
    } = st;
    let clock = &mut threads[me].clock;
    let at = clock.tick(me);
    let d = datas.entry(loc).or_default();
    let mine = Access {
        thread: me,
        at,
        site,
    };
    let mut conflicts: Vec<(Access, RaceKind)> = Vec::new();
    if let Some(w) = &d.last_write {
        if w.thread != me && clock.get(w.thread) < w.at {
            let kind = if is_write {
                RaceKind::WriteWrite
            } else {
                RaceKind::WriteRead
            };
            conflicts.push((w.clone(), kind));
        }
    }
    if is_write {
        for r in &d.reads {
            if r.thread != me && clock.get(r.thread) < r.at {
                conflicts.push((r.clone(), RaceKind::ReadWrite));
            }
        }
        d.reads.clear();
        d.last_write = Some(mine.clone());
    } else {
        d.reads.retain(|r| r.thread != me);
        d.reads.push(mine.clone());
    }
    for (prior, kind) in conflicts {
        if races.len() < 64 {
            races.push(Race {
                seed: *seed,
                kind,
                first: AccessLabel::new(&prior),
                second: AccessLabel::new(&mine),
            });
        }
        if *stop_on_first_race {
            *aborted = true;
        }
    }
}

#[track_caller]
pub(crate) fn data_read<T>(slot: &LocSlot, f: impl FnOnce() -> T) -> T {
    let site = Location::caller();
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_data(st, me, slot.id(), false, site);
            f()
        }),
    }
}

#[track_caller]
pub(crate) fn data_write<T>(slot: &LocSlot, f: impl FnOnce() -> T) -> T {
    let site = Location::caller();
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            record_data(st, me, slot.id(), true, site);
            f()
        }),
    }
}

/// One attempt to acquire a lock-like object; on success, joins the
/// lock's clock into the acquirer's.
pub(crate) fn lock_acquire_attempt<G>(slot: &LocSlot, f: impl FnOnce() -> Option<G>) -> Option<G> {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let g = f();
            if g.is_some() {
                let State { threads, locks, .. } = st;
                let clock = &mut threads[me].clock;
                clock.tick(me);
                clock.join(locks.entry(slot.id()).or_default());
            } else {
                st.threads[me].clock.tick(me);
                // Park until the holder releases (release clears this).
                st.threads[me].blocked = Some(BlockedOn::Lock(slot.id()));
            }
            g
        }),
    }
}

/// A single non-blocking acquisition attempt (`try_lock` semantics):
/// like [`lock_acquire_attempt`] but failure does not park the caller.
pub(crate) fn lock_try_once<G>(slot: &LocSlot, f: impl FnOnce() -> Option<G>) -> Option<G> {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let g = f();
            let State { threads, locks, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            if g.is_some() {
                clock.join(locks.entry(slot.id()).or_default());
            }
            g
        }),
    }
}

/// Release a lock-like object: joins the releaser's clock into the
/// lock's clock, then runs `f` (which drops the real guard).
pub(crate) fn lock_release<R>(slot: &LocSlot, f: impl FnOnce() -> R) -> R {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let loc = slot.id();
            let State { threads, locks, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            locks.entry(loc).or_default().join(clock);
            for t in threads.iter_mut() {
                if t.blocked == Some(BlockedOn::Lock(loc)) {
                    t.blocked = None;
                }
            }
            f()
        }),
    }
}

pub(crate) fn cv_notify(slot: &LocSlot, f: impl FnOnce()) {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let loc = slot.id();
            let State { threads, cvs, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            cvs.entry(loc).or_default().join(clock);
            for t in threads.iter_mut() {
                if t.blocked == Some(BlockedOn::Cv(loc)) {
                    t.blocked = None;
                }
            }
            f()
        }),
    }
}

/// First half of a modeled condvar wait, as one scheduling step: mark
/// the caller blocked on the condvar, release the mutex's clock (and its
/// lock-blocked waiters), and run `f` to drop the real guard.
pub(crate) fn cv_block_and_release(cv: &LocSlot, mutex: &LocSlot, f: impl FnOnce()) {
    match session_for_op() {
        None => f(),
        Some((s, me)) => with_step(&s, me, |st, me| {
            let cv_loc = cv.id();
            let mutex_loc = mutex.id();
            let State { threads, locks, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            locks.entry(mutex_loc).or_default().join(clock);
            for t in threads.iter_mut() {
                if t.blocked == Some(BlockedOn::Lock(mutex_loc)) {
                    t.blocked = None;
                }
            }
            threads[me].blocked = Some(BlockedOn::Cv(cv_loc));
            f()
        }),
    }
}

/// After a (modeled) condvar wakeup: join the condvar's clock.
pub(crate) fn cv_wake(slot: &LocSlot) {
    if let Some((s, me)) = session_for_op() {
        with_step(&s, me, |st, me| {
            let State { threads, cvs, .. } = st;
            let clock = &mut threads[me].clock;
            clock.tick(me);
            clock.join(cvs.entry(slot.id()).or_default());
        })
    }
}

/// A pure scheduling point (facade `yield_now`, spin backoff, modeled
/// sleeps).
pub(crate) fn yield_step() {
    if let Some((s, me)) = session_for_op() {
        with_step(&s, me, |st, me| {
            st.threads[me].clock.tick(me);
        })
    }
}

/// True when the calling thread is registered with a live session (used
/// by facade locks to pick the spin-try path over real blocking).
pub(crate) fn in_session() -> bool {
    session_for_op().is_some()
}

// ---------------------------------------------------------------------------
// Checked thread spawning (used by crate::thread)
// ---------------------------------------------------------------------------

pub(crate) struct CheckedSpawn {
    pub(crate) session: Arc<Session>,
    pub(crate) child: usize,
}

/// Register a child of the calling (registered) thread and return the
/// session handle to pass into the native thread. `None` when the caller
/// is not in a session.
pub(crate) fn prepare_spawn() -> Option<CheckedSpawn> {
    let (session, parent) = session_for_op()?;
    let child = session.register_thread(Some(parent));
    Some(CheckedSpawn { session, child })
}

/// Entry hook for the native child thread: adopt the session, park at
/// the first scheduling point, then run `f` under the schedule.
/// Returns `None` when the closure was unwound by a session abort.
pub(crate) fn run_child<T>(spawn: CheckedSpawn, f: impl FnOnce() -> T) -> Option<T> {
    let CheckedSpawn { session, child } = spawn;
    TLS_SESSION.with(|t| *t.borrow_mut() = Some((session.clone(), child)));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // First scheduling point: parks, which also signals the parent
        // that the candidate set now includes this thread.
        yield_step();
        f()
    }));
    TLS_SESSION.with(|t| *t.borrow_mut() = None);
    let out = match r {
        Ok(v) => {
            session.thread_finished(child, None);
            Some(v)
        }
        Err(p) => {
            session.thread_finished(child, Some(p));
            None
        }
    };
    // Hold the OS thread alive until the whole iteration is done: TLS
    // destructors of checked code (e.g. QSBR's registry cleanup) run at
    // OS-thread exit, outside instrumentation. Were the thread to exit
    // now, those destructors would mutate shared state concurrently with
    // the still-running schedule — nondeterministically and invisibly to
    // the race detector. After the iteration nothing is scheduled, so
    // the destructors can no longer interleave with checked code.
    session.wait_all_finished();
    out
}

/// Non-blocking, non-stepping query: has the checked thread finished?
pub(crate) fn peek_finished(session: &Arc<Session>, target: usize) -> bool {
    let st = lock_state(session);
    st.threads[target].finished
}

/// Parent-side barrier after spawning: wait until the child parked.
pub(crate) fn await_parked(spawn_session: &Arc<Session>, child: usize) {
    spawn_session.wait_parked(child);
}

/// One scheduled poll of a checked join: returns true (joining the
/// target's final clock) once the target finished.
pub(crate) fn join_poll(session: &Arc<Session>, target: usize) -> bool {
    match session_for_op() {
        Some((s, me)) if Arc::ptr_eq(&s, session) => with_step(&s, me, |st, me| {
            if st.threads[target].finished {
                let final_clock = st.threads[target].clock.clone();
                let clock = &mut st.threads[me].clock;
                clock.tick(me);
                clock.join(&final_clock);
                true
            } else {
                // Park until the target finishes (`thread_finished` on
                // the target makes this thread eligible again).
                st.threads[me].blocked = Some(BlockedOn::Thread(target));
                false
            }
        }),
        _ => {
            // Joiner is outside the session (or in another): block
            // without consuming schedule steps.
            session.wait_finished(target);
            true
        }
    }
}

// ---------------------------------------------------------------------------
// Public API: Config / Checker / Report
// ---------------------------------------------------------------------------

/// Checker configuration. All fields have conservative defaults; the
/// important contract is that a `(Config, seed)` pair fully determines
/// the explored schedule.
#[derive(Clone, Debug)]
pub struct Config {
    /// First seed; iteration `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Number of schedules to explore.
    pub iterations: usize,
    /// Per-iteration scheduling-step budget (aborts livelocks).
    pub max_steps: usize,
    /// Schedule policy.
    pub policy: Policy,
    /// Abort an iteration at its first detected race.
    pub stop_on_first_race: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            base_seed: 0x5eed,
            iterations: 32,
            max_steps: 20_000,
            policy: Policy::Random,
            stop_on_first_race: false,
        }
    }
}

/// How two accesses conflicted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Prior write, current write.
    WriteWrite,
    /// Prior write, current read.
    WriteRead,
    /// Prior read, current write.
    ReadWrite,
}

/// One endpoint of a detected race.
#[derive(Clone, Debug)]
pub struct AccessLabel {
    /// Session-local thread index (0 = the root closure's thread).
    pub thread: usize,
    /// `file:line:column` of the access.
    pub site: String,
}

impl AccessLabel {
    fn new(a: &Access) -> Self {
        AccessLabel {
            thread: a.thread,
            site: format!("{}:{}:{}", a.site.file(), a.site.line(), a.site.column()),
        }
    }
}

/// A detected data race, with the seed that reproduces the schedule.
#[derive(Clone, Debug)]
pub struct Race {
    pub seed: u64,
    pub kind: RaceKind,
    pub first: AccessLabel,
    pub second: AccessLabel,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (a, b) = match self.kind {
            RaceKind::WriteWrite => ("write", "write"),
            RaceKind::WriteRead => ("write", "read"),
            RaceKind::ReadWrite => ("read", "write"),
        };
        write!(
            f,
            "data race (seed {:#x}): {} at {} (thread {}) is unordered with {} at {} (thread {})",
            self.seed,
            a,
            self.first.site,
            self.first.thread,
            b,
            self.second.site,
            self.second.thread
        )
    }
}

/// Aggregate result of a checker run.
#[derive(Debug, Default)]
pub struct Report {
    /// Iterations actually executed.
    pub iterations: usize,
    /// All detected races (bounded per iteration), in detection order.
    pub races: Vec<Race>,
    /// Seeds whose iteration blew the step budget.
    pub budget_exhausted: Vec<u64>,
    /// Seeds whose iteration ended with every live thread blocked.
    pub deadlocks: Vec<u64>,
}

impl Report {
    /// No races detected.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }

    pub fn first_race(&self) -> Option<&Race> {
        self.races.first()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "checker: {} iterations, {} race(s), {} budget-exhausted, {} deadlocked",
            self.iterations,
            self.races.len(),
            self.budget_exhausted.len(),
            self.deadlocks.len()
        )?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// The deterministic checker. See the module docs.
pub struct Checker {
    config: Config,
}

impl Checker {
    pub fn new(config: Config) -> Self {
        Checker { config }
    }

    /// Explore `config.iterations` seeded schedules of `f`. The closure
    /// runs once per iteration on a fresh registered root thread; any
    /// thread it spawns through [`crate::thread::spawn`] joins the
    /// schedule. Panics from the closure (assertion failures) are
    /// re-raised here after the iteration's threads wind down.
    pub fn run<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut report = Report::default();
        for i in 0..self.config.iterations {
            let seed = self.config.base_seed.wrapping_add(i as u64);
            let outcome = Self::run_one(seed, &self.config, f.clone());
            report.iterations += 1;
            let had_race = !outcome.races.is_empty();
            report.races.extend(outcome.races);
            if outcome.budget_exhausted {
                report.budget_exhausted.push(seed);
            }
            if outcome.deadlocked {
                report.deadlocks.push(seed);
            }
            if let Some(p) = outcome.panic {
                std::panic::resume_unwind(p);
            }
            if had_race && self.config.stop_on_first_race {
                break;
            }
        }
        report
    }

    /// Re-run a single seed (e.g. one reported by [`Race::seed`]).
    pub fn replay<F>(seed: u64, config: &Config, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        Checker::new(Config {
            base_seed: seed,
            iterations: 1,
            ..config.clone()
        })
        .run(f)
    }

    fn run_one(seed: u64, cfg: &Config, f: Arc<dyn Fn() + Send + Sync>) -> IterOutcome {
        let session = Session::new(seed, cfg);
        ACTIVE_SESSIONS.fetch_add(1, StdOrdering::SeqCst);
        let root = session.register_thread(None);
        let s2 = session.clone();
        let handle = std::thread::Builder::new()
            .name(format!("checked-root-{seed:#x}"))
            .spawn(move || {
                let spawn = CheckedSpawn {
                    session: s2,
                    child: root,
                };
                run_child(spawn, move || f());
            })
            .expect("spawn checked root");
        session.wait_all_finished();
        let _ = handle.join();
        ACTIVE_SESSIONS.fetch_sub(1, StdOrdering::SeqCst);
        let mut st = lock_state(&session);
        let outcome = IterOutcome {
            races: std::mem::take(&mut st.races),
            budget_exhausted: st.budget_exhausted,
            deadlocked: st.deadlocked,
            panic: st.panics.drain(..).next(),
        };
        drop(st);
        outcome
    }
}

struct IterOutcome {
    races: Vec<Race>,
    budget_exhausted: bool,
    deadlocked: bool,
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}
