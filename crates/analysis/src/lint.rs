//! Source-level concurrency lint.
//!
//! Walks Rust sources and enforces ten repo rules:
//!
//! 1. **`unsafe` sites must be justified**: every `unsafe` block, `unsafe
//!    fn`, or `unsafe impl` must have a `// SAFETY:` comment (or a
//!    `# Safety` doc section) immediately above it — above at most a
//!    short run of doc comments, attributes and signature lines.
//! 2. **`Ordering::Relaxed` only where audited**: `Relaxed` may appear
//!    only in files on [`RELAXED_ALLOWLIST`] (each entry is an audited
//!    module — see DESIGN.md §6 for how to add one).
//! 3. **No bare sync primitives outside the facade**: `std::sync::atomic`
//!    and `std::thread::spawn` may appear only in files on
//!    [`SYNC_ALLOWLIST`]; everything else goes through
//!    `rcuarray_analysis::{atomic, thread}` so the checker can see it.
//! 4. **No new bare statistics counters in instrumented crates**: a
//!    relaxed `fetch_add` in an [`INSTRUMENTED_CRATES`] file is an ad-hoc
//!    metric; new ones must go through the `rcuarray-obs` facade
//!    (`LazyCounter`/`LazyGauge`/`LazyHistogram`) so they show up in the
//!    registry, and only the audited pre-obs sites on
//!    [`COUNTER_ALLOWLIST`] are exempt (each mirrors its events to obs or
//!    carries per-object/per-locale meaning the global registry cannot).
//! 5. **No const-bool scheme branching outside the reclaim core**: the
//!    `IS_QSBR` flag pattern (a marker const that call sites branch on,
//!    the literal reading of the paper's `isQSBR` parameter) may appear
//!    only under [`SCHEME_FLAG_ALLOWLIST`]. Everywhere else, scheme
//!    differences must be *behavior* on the `rcuarray-reclaim::Reclaim`
//!    trait — a new scheme plugs in without touching consumers.
//! 6. **No read guard held across a blocking call** in
//!    [`INSTRUMENTED_CRATES`]: a `let`-bound guard from `read_lock()` /
//!    `pin()` that is still in scope at a `park()` / `sleep` / `join` /
//!    `recv` call is exactly the stalled reader DESIGN.md §9 defends
//!    against — it pins the reclamation backlog for the full block.
//!    Detection is lexical (brace-depth scope tracking) and stops at the
//!    first `#[cfg(test)]` line: tests deliberately stall readers to
//!    exercise quarantine and evacuation.
//! 7. **No leaked read guards**: `std::mem::forget` or
//!    `ManuallyDrop::new` applied to a `let`-bound read-side guard
//!    (`read_lock()` / `pin()`) suppresses the drop that ends the
//!    critical section — the epoch/hazard/QSBR record stays pinned
//!    forever and reclamation wedges (the shadow-heap oracle would show
//!    it as an unbounded `Retired` backlog). Binding names are tracked
//!    with the same brace-depth scoping as rule 6; `Retired::leak`'s
//!    internal `mem::forget` of its *closure* is not a guard binding and
//!    does not match. Like rule 6, scanning stops at `#[cfg(test)]`.
//! 8. **No unbounded queue construction in the serving layer**: files
//!    under [`BOUNDED_QUEUE_CRATES`] (currently `crates/service/`) may
//!    not construct an unbounded channel or growable queue
//!    (`mpsc::channel`, crossbeam-style `unbounded()`, `VecDeque::new`,
//!    `LinkedList::new`, `SegQueue::new`). The service's admission
//!    control rests on every queue refusing at a hard capacity
//!    (DESIGN.md §11); one unbounded buffer anywhere in the request path
//!    silently converts overload from refusal into latency and memory
//!    growth. Use `BoundedQueue` (or `VecDeque::with_capacity` plus an
//!    explicit length check) instead.
//! 9. **No raw comm accounting outside the runtime**: the
//!    `CommLayer::record_*` family (`record_get` / `record_put` /
//!    `record_on` / `record_local` / `record_retry`) is the runtime's
//!    *internal* charging vocabulary. Every cross-locale byte outside
//!    `crates/runtime/` must be expressed as a typed `CommMessage`
//!    through the `Transport` facade (`Cluster::send_to` /
//!    `copy_between` / `CommLayer::send`), so backends stay swappable
//!    and per-link fault rules apply uniformly (DESIGN.md §14).
//! 10. **No raw block placement outside the placement map**: the
//!     round-robin home-selection vocabulary (`RoundRobinCounter`,
//!     `next_round_robin(`) may appear in `crates/rcuarray/` only inside
//!     `src/placement.rs`. Every locale-indexed placement decision —
//!     which locale homes a block, where a replica or repair copy lands —
//!     must go through `PlacementMap`/`BlockGroup`, so replication,
//!     failover, and membership-aware planning stay in one auditable
//!     place (DESIGN.md §15). Ad-hoc cursors bypass the membership view
//!     and break the bit-stable-at-RF-1 guarantee.
//!
//! Detection runs on *code only*: comments, strings (incl. raw strings)
//! and char literals are stripped by a small state machine first, so
//! prose mentioning `unsafe` or `Relaxed` never trips the lint.

use std::path::{Path, PathBuf};

/// Files (path suffixes, `/`-separated) where `Ordering::Relaxed` is
/// allowed. Keep each entry tied to an audit note in the file itself.
pub const RELAXED_ALLOWLIST: &[&str] = &[
    // The facade + checker map and reason about all orderings.
    "crates/analysis/",
    // The OrderingMode ablation knob: deliberately maps to Relaxed for
    // the measurement-only unsound mode (is_sound() == false).
    "crates/ebr/src/ordering.rs",
    // Monotonic statistics counters only; never used for synchronization.
    "crates/ebr/src/epoch.rs",
    "crates/ebr/src/sharded.rs",
    "crates/qsbr/src/domain.rs",
    "crates/qsbr/src/defer_list.rs",
    "crates/rcuarray/src/array.rs",
    "crates/rcuarray/src/stats.rs",
    // Replica-lag ledger: monotonic byte tallies drained at checkpoints;
    // never used for synchronization (the groups Mutex orders stores).
    "crates/rcuarray/src/placement.rs",
    // Per-element cells: Relaxed load/store is the paper's data-plane
    // contract (element visibility is ordered by snapshot publication).
    "crates/rcuarray/src/element.rs",
    // Pre-facade crates, audited wholesale: the abstract model checker,
    // the educational single-pointer RCU, and the baseline arrays.
    "crates/model/",
    "crates/rcu/",
    "crates/baselines/",
    "crates/collections/",
    "crates/bench/",
    // Comm/fault counters in the simulated runtime (not migrated; the
    // migrated sync_var.rs / global_lock.rs get narrow entries below).
    "crates/runtime/src/comm.rs",
    "crates/runtime/src/fault.rs",
    // Per-link transmission counters and the delivery-log enable gate;
    // cluster totals are mirrored to obs in the same functions.
    "crates/runtime/src/transport/",
    "crates/runtime/src/config.rs",
    "crates/runtime/src/telemetry.rs",
    // Round-robin placement hint: the counter only steers which locale
    // homes the next block; any interleaving yields a valid placement.
    "crates/runtime/src/dist.rs",
    // Allocation statistics counters (record_allocation & getters).
    "crates/runtime/src/locale.rs",
    // Acquisition statistics counters; the lock itself is a parking_lot
    // mutex behind the facade. Test-module counters are lock-protected.
    "crates/runtime/src/global_lock.rs",
    // Test-module counters: coforall/forall visit counts (joined before
    // asserting) and a lock-protected read-modify-write in sync_var.
    "crates/runtime/src/lib.rs",
    "crates/runtime/src/sync_var.rs",
    // debug_assert sanity load directly before the Release store that
    // actually publishes the checkpoint.
    "crates/qsbr/src/record.rs",
    // Test modules: stop flags joined by scope exit, plus the
    // should_panic test naming the OrderingMode::Relaxed variant.
    "crates/ebr/src/rcu_cell.rs",
    "crates/ebr/tests/cell_model.rs",
    // should_panic test naming the OrderingMode::Relaxed variant.
    "crates/rcuarray/src/config.rs",
    // The telemetry facade: sharded monotonic counters, gauges and
    // histogram buckets are Relaxed by design — readers only ever sum or
    // snapshot them, never synchronize through them (DESIGN.md §7).
    "crates/obs/",
];

/// Crates whose hot layers are wired into the `rcuarray-obs` metrics
/// registry; rule 4 applies to files under these prefixes.
pub const INSTRUMENTED_CRATES: &[&str] = &[
    "crates/ebr/",
    "crates/qsbr/",
    "crates/rcuarray/",
    "crates/runtime/",
    "crates/service/",
];

/// Audited pre-obs relaxed-`fetch_add` sites inside the instrumented
/// crates. Everything else must use the obs facade for new counters.
pub const COUNTER_ALLOWLIST: &[&str] = &[
    // Per-zone protocol counters, mirrored to obs in the same functions.
    "crates/ebr/src/epoch.rs",
    // Per-domain counters backing DomainStats; obs handles ride along.
    "crates/qsbr/src/domain.rs",
    // Per-array counters backing ArrayStats; obs handles ride along.
    "crates/rcuarray/src/array.rs",
    // Per-locale replica-lag ledger backing ArrayStats::replica_lag_bytes;
    // the obs gauge is set from the total in the same functions.
    "crates/rcuarray/src/placement.rs",
    // Per-locale comm/fault accounting (locality assertions need the
    // per-locale split; cluster totals are mirrored to obs).
    "crates/runtime/src/comm.rs",
    "crates/runtime/src/fault.rs",
    // Per-link (from, to) transmission cells; link totals mirrored to obs.
    "crates/runtime/src/transport/",
    "crates/runtime/src/locale.rs",
    "crates/runtime/src/global_lock.rs",
    // Round-robin placement cursor: an index, not a metric.
    "crates/runtime/src/dist.rs",
    // Test-module visit counters (joined before asserting).
    "crates/runtime/src/lib.rs",
];

/// Crates whose request path must never construct an unbounded queue or
/// channel (rule 8): admission control only works when every buffer
/// refuses at a hard capacity.
pub const BOUNDED_QUEUE_CRATES: &[&str] = &["crates/service/"];

/// Files allowed to call the `CommLayer::record_*` charging primitives
/// (rule 9). Only the runtime itself may speak them; every other crate
/// sends typed `CommMessage`s through the `Transport` facade.
pub const RAW_COMM_ALLOWLIST: &[&str] = &["crates/runtime/"];

/// Crates whose locale-indexed block placement must go through the
/// placement map (rule 10).
pub const PLACEMENT_CRATES: &[&str] = &["crates/rcuarray/"];

/// The one file inside [`PLACEMENT_CRATES`] allowed to speak the
/// round-robin home-selection vocabulary (rule 10).
pub const PLACEMENT_ALLOWLIST: &[&str] = &["crates/rcuarray/src/placement.rs"];

/// Files allowed to name an `IS_QSBR`-style scheme flag. Only the
/// reclamation core may ever need one (e.g. internally to a future
/// scheme); every consumer layer dispatches through the `Reclaim` trait.
pub const SCHEME_FLAG_ALLOWLIST: &[&str] = &["crates/reclaim/"];

/// Files allowed to name `std::sync::atomic` / `std::thread::spawn`.
pub const SYNC_ALLOWLIST: &[&str] = &[
    // The facade itself wraps the std types.
    "crates/analysis/",
    // Not-yet-migrated crates (tracked in ROADMAP): the model checker,
    // single-pointer RCU, baselines, collections, bench harness, and the
    // unmigrated parts of the simulated runtime.
    "crates/model/",
    "crates/rcu/",
    "crates/baselines/",
    "crates/collections/",
    "crates/bench/",
    "crates/runtime/",
];

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub msg: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    MissingSafety,
    RelaxedOutsideAllowlist,
    BareSyncPrimitive,
    BareCounterOutsideObs,
    SchemeFlagBranching,
    GuardAcrossBlocking,
    ForgetGuard,
    UnboundedQueue,
    RawComm,
    RawPlacement,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rule = match self.rule {
            Rule::MissingSafety => "missing-safety",
            Rule::RelaxedOutsideAllowlist => "relaxed-ordering",
            Rule::BareSyncPrimitive => "bare-sync",
            Rule::BareCounterOutsideObs => "bare-counter",
            Rule::SchemeFlagBranching => "scheme-flag",
            Rule::GuardAcrossBlocking => "guard-across-blocking",
            Rule::ForgetGuard => "forget-guard",
            Rule::UnboundedQueue => "unbounded-queue",
            Rule::RawComm => "raw-comm",
            Rule::RawPlacement => "raw-placement",
        };
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            rule,
            self.msg
        )
    }
}

/// Strip comments, string/char literals from `src`, preserving line
/// structure (stripped characters become spaces), and return the
/// code-only lines. Handles nested block comments, raw strings with
/// hashes, escapes, and lifetimes-vs-char-literals.
pub fn strip_noncode(src: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut st = St::Code;
    let mut out = String::with_capacity(src.len());
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Lifetime ('a) vs char literal ('x').
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && b.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push(c);
                    } else {
                        st = St::Char;
                        out.push(' ');
                    }
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    st = if depth > 1 {
                        St::BlockComment(depth - 1)
                    } else {
                        St::Code
                    };
                    out.push(' ');
                    i += 2;
                    continue;
                }
            }
            St::Str => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '\\' {
                    if next == Some('\n') {
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = St::Code;
                }
            }
            St::RawStr(hashes) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        for _ in (i + 1)..j {
                            out.push(' ');
                        }
                        st = St::Code;
                        i = j;
                        continue;
                    }
                }
            }
            St::Char => {
                out.push(' ');
                if c == '\\' {
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '\'' || c == '\n' {
                    st = St::Code;
                }
            }
        }
        i += 1;
    }
    out.lines().map(|l| l.to_string()).collect()
}

fn has_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= line.len()
            || !line[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

fn is_safety_marker(line: &str) -> bool {
    line.contains("SAFETY:") || line.contains("# Safety")
}

/// True when the `unsafe` site at `idx` (0-based) is covered by a safety
/// comment: on the same line, or above it across doc comments,
/// attributes, blank lines, and at most two plain code lines (multi-line
/// signatures / `let` bindings).
fn site_has_safety(raw_lines: &[&str], idx: usize) -> bool {
    if is_safety_marker(raw_lines[idx]) {
        return true;
    }
    let mut skipped_code = 0;
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if is_safety_marker(t) {
            return true;
        }
        let is_annotation = t.is_empty()
            || t.starts_with("///")
            || t.starts_with("//!")
            || t.starts_with("//")
            || t.starts_with("#[")
            || t.starts_with("#!")
            || t.starts_with('*'); // inner lines of block doc comments
        if !is_annotation {
            skipped_code += 1;
            if skipped_code > 2 {
                return false;
            }
        }
    }
    false
}

/// Source patterns that `let`-bind a read-side guard.
const GUARD_BINDERS: &[&str] = &["read_lock()", ".pin()", "Guard::pin("];

/// True when `line` makes a call that blocks the thread for an unbounded
/// (or scheduler-scale) duration. `park(` is word-boundary matched so
/// `unpark()` — which wakes a thread, never blocks one — stays clean.
fn is_blocking_call(line: &str) -> bool {
    if line.contains("thread::sleep") || line.contains(".join(") || line.contains(".recv(") {
        return true;
    }
    let mut start = 0;
    while let Some(pos) = line[start..].find("park(") {
        let at = start + pos;
        let boundary = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        start = at + "park(".len();
    }
    false
}

/// Rule 6: scan `code_lines` for a guard binding still in scope (by brace
/// depth) at a blocking call. Scanning stops at the first `#[cfg(test)]`
/// line — test modules stall readers on purpose.
fn guard_across_blocking(path: &Path, code_lines: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    // (depth the guard's scope closes at, line it was bound on)
    let mut guards: Vec<(i64, usize)> = Vec::new();
    let mut depth: i64 = 0;
    for (i, code) in code_lines.iter().enumerate() {
        if code.contains("#[cfg(test)]") {
            break;
        }
        let trimmed = code.trim_start();
        if trimmed.starts_with("let ") && GUARD_BINDERS.iter().any(|g| code.contains(g)) {
            guards.push((depth, i + 1));
        } else if !guards.is_empty() && is_blocking_call(code) {
            let (_, bound_at) = guards[guards.len() - 1];
            out.push(Violation {
                file: path.to_path_buf(),
                line: i + 1,
                rule: Rule::GuardAcrossBlocking,
                msg: format!(
                    "blocking call while the read guard bound on line {bound_at} is live; \
                     a parked reader pins the reclamation backlog (DESIGN.md §9)"
                ),
            });
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|&(d, _)| d <= depth);
                }
                _ => {}
            }
        }
    }
    out
}

/// The binding name introduced by a guard `let` line (`let g = ...` /
/// `let mut g = ...`), if the line binds one of [`GUARD_BINDERS`].
fn guard_binding_name(trimmed: &str) -> Option<&str> {
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// Rule 7: a live read-guard binding passed to `mem::forget` or
/// `ManuallyDrop::new`. Same scope model as rule 6: brace-depth tracked
/// bindings, scanning stops at the first `#[cfg(test)]` line.
fn forget_guard(path: &Path, code_lines: &[String]) -> Vec<Violation> {
    const SINKS: &[&str] = &["mem::forget(", "ManuallyDrop::new("];
    let mut out = Vec::new();
    // (depth the guard's scope closes at, binding name, line bound on)
    let mut guards: Vec<(i64, String, usize)> = Vec::new();
    let mut depth: i64 = 0;
    for (i, code) in code_lines.iter().enumerate() {
        if code.contains("#[cfg(test)]") {
            break;
        }
        let trimmed = code.trim_start();
        if trimmed.starts_with("let ") && GUARD_BINDERS.iter().any(|g| code.contains(g)) {
            if let Some(name) = guard_binding_name(trimmed) {
                guards.push((depth, name.to_string(), i + 1));
            }
        } else if !guards.is_empty() {
            for sink in SINKS {
                let Some(pos) = code.find(sink) else { continue };
                let arg = &code[pos + sink.len()..];
                if let Some((_, name, bound_at)) =
                    guards.iter().find(|(_, name, _)| has_word(arg, name))
                {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: i + 1,
                        rule: Rule::ForgetGuard,
                        msg: format!(
                            "`{}` applied to the read guard `{name}` bound on line \
                             {bound_at}; a leaked guard never ends its critical \
                             section, so reclamation backs up forever",
                            sink.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|g| g.0 <= depth);
                }
                _ => {}
            }
        }
    }
    out
}

/// Constructors of queues with no capacity bound (rule 8). Each is a
/// call-site pattern; `VecDeque::with_capacity` — which the service's
/// `BoundedQueue` uses under an explicit length check — does not match.
const UNBOUNDED_QUEUE_CTORS: &[&str] = &[
    "mpsc::channel(",
    "unbounded(",
    "VecDeque::new(",
    "LinkedList::new(",
    "SegQueue::new(",
];

/// True when `line` constructs an unbounded queue/channel. The bare
/// `unbounded(` pattern is word-boundary matched so identifiers like
/// `pop_unbounded(` don't trip it.
fn constructs_unbounded_queue(line: &str) -> bool {
    UNBOUNDED_QUEUE_CTORS.iter().any(|pat| {
        let mut start = 0;
        while let Some(pos) = line[start..].find(pat) {
            let at = start + pos;
            let boundary = at == 0
                || !line[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if boundary {
                return true;
            }
            start = at + pat.len();
        }
        false
    })
}

fn allowlisted(path: &Path, allow: &[&str]) -> bool {
    let norm: String = path
        .to_string_lossy()
        .chars()
        .map(|c| if c == '\\' { '/' } else { c })
        .collect();
    allow.iter().any(|a| norm.contains(a))
}

/// Lint a single file's source text.
pub fn lint_source(path: &Path, src: &str) -> Vec<Violation> {
    let raw_lines: Vec<&str> = src.lines().collect();
    let code_lines = strip_noncode(src);
    let mut out = Vec::new();
    for (i, code) in code_lines.iter().enumerate() {
        let line_no = i + 1;
        if has_word(code, "unsafe") && !site_has_safety(&raw_lines, i) {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: Rule::MissingSafety,
                msg: "`unsafe` site without a `// SAFETY:` (or `# Safety`) justification".into(),
            });
        }
        if has_word(code, "Relaxed") && !allowlisted(path, RELAXED_ALLOWLIST) {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: Rule::RelaxedOutsideAllowlist,
                msg: "`Ordering::Relaxed` outside the audited allowlist (see DESIGN.md §6)".into(),
            });
        }
        if (code.contains("std::sync::atomic") || code.contains("std::thread::spawn"))
            && !allowlisted(path, SYNC_ALLOWLIST)
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: Rule::BareSyncPrimitive,
                msg: "bare std sync primitive; use the rcuarray_analysis facade".into(),
            });
        }
        if has_word(code, "IS_QSBR") && !allowlisted(path, SCHEME_FLAG_ALLOWLIST) {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: Rule::SchemeFlagBranching,
                msg: "const-bool scheme flag outside the reclaim core; express \
                      scheme differences as Reclaim-trait behavior (DESIGN.md §8)"
                    .into(),
            });
        }
        if constructs_unbounded_queue(code) && allowlisted(path, BOUNDED_QUEUE_CRATES) {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: Rule::UnboundedQueue,
                msg: "unbounded queue/channel constructor in the serving layer; \
                      admission control requires every buffer to refuse at a hard \
                      capacity — use BoundedQueue (DESIGN.md §11)"
                    .into(),
            });
        }
        if code.contains("fetch_add")
            && has_word(code, "Relaxed")
            && allowlisted(path, INSTRUMENTED_CRATES)
            && !allowlisted(path, COUNTER_ALLOWLIST)
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: Rule::BareCounterOutsideObs,
                msg: "ad-hoc relaxed counter in an instrumented crate; use the \
                      rcuarray-obs facade (LazyCounter/LazyGauge/LazyHistogram)"
                    .into(),
            });
        }
        const RECORD_CALLS: [&str; 5] = [
            "record_get",
            "record_put",
            "record_on",
            "record_local",
            "record_retry",
        ];
        if RECORD_CALLS.iter().any(|c| has_word(code, c)) && !allowlisted(path, RAW_COMM_ALLOWLIST)
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: Rule::RawComm,
                msg: "raw `CommLayer::record_*` call outside crates/runtime; \
                      express remote traffic as a typed CommMessage through \
                      the Transport facade (DESIGN.md §14)"
                    .into(),
            });
        }
        if (has_word(code, "RoundRobinCounter") || has_word(code, "next_round_robin"))
            && allowlisted(path, PLACEMENT_CRATES)
            && !allowlisted(path, PLACEMENT_ALLOWLIST)
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: Rule::RawPlacement,
                msg: "raw round-robin placement outside the placement map; \
                      home selection in crates/rcuarray must go through \
                      PlacementMap/BlockGroup so replication and failover \
                      see every decision (DESIGN.md §15)"
                    .into(),
            });
        }
    }
    if allowlisted(path, INSTRUMENTED_CRATES) {
        out.extend(guard_across_blocking(path, &code_lines));
    }
    out.extend(forget_guard(path, &code_lines));
    out
}

/// Recursively lint every `.rs` file under `roots`, skipping `target`
/// and `fixtures` directories. Returns violations plus the file count.
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<(Vec<Violation>, usize)> {
    let mut violations = Vec::new();
    let mut files = 0usize;
    let mut stack: Vec<PathBuf> = roots.to_vec();
    let mut all: Vec<PathBuf> = Vec::new();
    while let Some(p) = stack.pop() {
        let meta = std::fs::metadata(&p)?;
        if meta.is_dir() {
            let skip = p
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n == "target" || n == "fixtures" || n.starts_with('.'));
            if skip {
                continue;
            }
            for entry in std::fs::read_dir(&p)? {
                stack.push(entry?.path());
            }
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            all.push(p);
        }
    }
    all.sort();
    for p in all {
        let src = std::fs::read_to_string(&p)?;
        violations.extend(lint_source(&p, &src));
        files += 1;
    }
    Ok((violations, files))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(s: &str) -> Vec<Violation> {
        lint_source(Path::new("somewhere/else.rs"), s)
    }

    #[test]
    fn strip_removes_comments_and_strings() {
        let src = "let x = \"unsafe Relaxed\"; // unsafe Relaxed\n/* unsafe */ let y = 1;";
        let lines = strip_noncode(src);
        assert!(!lines[0].contains("unsafe"));
        assert!(!lines[0].contains("Relaxed"));
        assert!(lines[1].contains("let y = 1;"));
        assert!(!lines[1].contains("unsafe"));
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "let s = r#\"unsafe \"# ; fn f<'a>(x: &'a u8) -> &'a u8 { x }";
        let joined = strip_noncode(src).join("\n");
        assert!(!joined.contains("unsafe"));
        assert!(joined.contains("fn f<'a>"));
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let v = lint_str("fn f() {\n    unsafe { danger() };\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::MissingSafety);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_ok() {
        let v = lint_str("fn f() {\n    // SAFETY: fine because reasons.\n    unsafe { ok() };\n}");
        assert!(v.is_empty());
    }

    #[test]
    fn unsafe_fn_with_doc_safety_ok() {
        let v = lint_str(
            "/// Does a thing.\n///\n/// # Safety\n/// Caller must uphold X.\npub unsafe fn g() {}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn safety_does_not_reach_across_statements() {
        let v = lint_str(
            "// SAFETY: covers only the next site.\nlet a = 1;\nlet b = 2;\nlet c = 3;\nunsafe { far() };\n",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn relaxed_flagged_outside_allowlist() {
        let v = lint_str("use std::x;\na.load(Ordering::Relaxed);\n");
        assert!(v.iter().any(|v| v.rule == Rule::RelaxedOutsideAllowlist));
    }

    #[test]
    fn relaxed_ok_in_allowlisted_file() {
        let v = lint_source(
            Path::new("crates/rcuarray/src/element.rs"),
            "a.load(Ordering::Relaxed);\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn bare_atomic_import_flagged() {
        let v = lint_str("use std::sync::atomic::AtomicUsize;\n");
        assert!(v.iter().any(|v| v.rule == Rule::BareSyncPrimitive));
    }

    #[test]
    fn facade_import_ok() {
        let v = lint_str("use rcuarray_analysis::atomic::AtomicUsize;\n");
        assert!(v.is_empty());
    }

    #[test]
    fn word_boundaries_respected() {
        // `RelaxedFoo` is not `Relaxed`.
        let v = lint_str("call(RelaxedFoo);\nlet not_unsafe_name = 1;\n");
        assert!(v.is_empty());
    }

    #[test]
    fn bare_counter_flagged_in_instrumented_crate() {
        let v = lint_source(
            Path::new("crates/ebr/src/new_module.rs"),
            "self.hits.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert!(v.iter().any(|v| v.rule == Rule::BareCounterOutsideObs));
    }

    #[test]
    fn bare_counter_ok_on_audited_site() {
        let v = lint_source(
            Path::new("crates/qsbr/src/domain.rs"),
            "self.defers.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::BareCounterOutsideObs));
    }

    #[test]
    fn bare_counter_ok_outside_instrumented_crates() {
        let v = lint_source(
            Path::new("crates/collections/src/dist_table.rs"),
            "self.len.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::BareCounterOutsideObs));
    }

    #[test]
    fn scheme_flag_flagged_outside_reclaim_core() {
        let v = lint_source(
            Path::new("crates/rcuarray/src/array.rs"),
            "if S::IS_QSBR {\n    domain.defer(f);\n}\n",
        );
        assert!(v.iter().any(|v| v.rule == Rule::SchemeFlagBranching));
    }

    #[test]
    fn scheme_flag_ok_inside_reclaim_core() {
        let v = lint_source(
            Path::new("crates/reclaim/src/lib.rs"),
            "const IS_QSBR: bool = false;\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::SchemeFlagBranching));
    }

    #[test]
    fn scheme_flag_word_boundary_respected() {
        // Prose-like identifiers containing the token as a substring are
        // not the flag pattern.
        let v = lint_str("let this_is_qsbr_adjacent = 1;\ncall(MY_IS_QSBR_X);\n");
        assert!(!v.iter().any(|v| v.rule == Rule::SchemeFlagBranching));
    }

    #[test]
    fn guard_across_sleep_flagged_in_instrumented_crate() {
        let v = lint_source(
            Path::new("crates/qsbr/src/new_module.rs"),
            "fn f(d: &D) {\n    let g = d.read_lock();\n    std::thread::sleep(t);\n}\n",
        );
        assert_eq!(
            v.iter()
                .filter(|v| v.rule == Rule::GuardAcrossBlocking)
                .count(),
            1
        );
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn guard_dropped_before_blocking_ok() {
        let v = lint_source(
            Path::new("crates/ebr/src/new_module.rs"),
            "fn f(z: &Z) {\n    {\n        let g = z.read_lock();\n        use_it(&g);\n    }\n    handle.join().unwrap();\n}\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::GuardAcrossBlocking));
    }

    #[test]
    fn blocking_without_guard_ok() {
        let v = lint_source(
            Path::new("crates/rcuarray/src/new_module.rs"),
            "fn f() {\n    std::thread::sleep(t);\n    worker.join().unwrap();\n}\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::GuardAcrossBlocking));
    }

    #[test]
    fn guard_across_blocking_ignored_in_test_modules() {
        let v = lint_source(
            Path::new("crates/qsbr/src/new_module.rs"),
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(d: &D) {\n        let g = d.read_lock();\n        std::thread::sleep(t);\n    }\n}\n",
        );
        assert!(
            !v.iter().any(|v| v.rule == Rule::GuardAcrossBlocking),
            "tests stall readers on purpose"
        );
    }

    #[test]
    fn guard_across_blocking_not_enforced_outside_instrumented_crates() {
        let v = lint_source(
            Path::new("crates/model/src/whatever.rs"),
            "fn f(d: &D) {\n    let g = d.read_lock();\n    std::thread::sleep(t);\n}\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::GuardAcrossBlocking));
    }

    #[test]
    fn pin_binding_across_park_flagged() {
        let v = lint_source(
            Path::new("crates/ebr/src/new_module.rs"),
            "fn f(z: &Zone) {\n    let t = z.pin();\n    std::thread::park();\n}\n",
        );
        assert!(v.iter().any(|v| v.rule == Rule::GuardAcrossBlocking));
    }

    #[test]
    fn forget_of_guard_binding_flagged() {
        let v = lint_str(
            "fn f(z: &Zone) {\n    let ticket = z.pin();\n    std::mem::forget(ticket);\n}\n",
        );
        let hits: Vec<_> = v.iter().filter(|v| v.rule == Rule::ForgetGuard).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].msg.contains("ticket"), "{}", hits[0].msg);
    }

    #[test]
    fn manually_drop_of_guard_binding_flagged() {
        let v = lint_str(
            "fn f(d: &D) {\n    let mut g = d.read_lock();\n    let held = ManuallyDrop::new(g);\n}\n",
        );
        assert!(v.iter().any(|v| v.rule == Rule::ForgetGuard));
    }

    #[test]
    fn forget_of_non_guard_value_ok() {
        // `Retired::leak` forgets its *closure*, not a guard binding.
        let v = lint_str(
            "fn leak(self) {\n    let g = d.read_lock();\n    drop(g);\n    std::mem::forget(self.run);\n}\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::ForgetGuard));
    }

    #[test]
    fn forget_after_guard_scope_closed_ok() {
        let v = lint_str(
            "fn f(z: &Zone, x: X) {\n    {\n        let t = z.pin();\n        use_it(&t);\n    }\n    std::mem::forget(x);\n}\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::ForgetGuard));
    }

    #[test]
    fn forget_guard_ignored_in_test_modules() {
        let v = lint_str(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(z: &Zone) {\n        let t = z.pin();\n        std::mem::forget(t);\n    }\n}\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::ForgetGuard));
    }

    #[test]
    fn forget_guard_shadowed_name_word_boundary() {
        // `ticket2` is not `ticket`.
        let v = lint_str(
            "fn f(z: &Zone, ticket2: X) {\n    let ticket = z.pin();\n    std::mem::forget(ticket2);\n}\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::ForgetGuard));
    }

    #[test]
    fn unbounded_ctors_flagged_in_service_crate() {
        for src in [
            "let (tx, rx) = mpsc::channel();\n",
            "let (tx, rx) = crossbeam_channel::unbounded();\n",
            "let buf = VecDeque::new();\n",
            "let buf: LinkedList<u32> = LinkedList::new();\n",
            "let q = SegQueue::new();\n",
        ] {
            let v = lint_source(Path::new("crates/service/src/new_module.rs"), src);
            assert_eq!(
                v.iter().filter(|v| v.rule == Rule::UnboundedQueue).count(),
                1,
                "expected exactly one unbounded-queue hit for {src:?}"
            );
        }
    }

    #[test]
    fn bounded_constructions_ok_in_service_crate() {
        let v = lint_source(
            Path::new("crates/service/src/queue.rs"),
            "let buf = VecDeque::with_capacity(cap);\nlet q = BoundedQueue::with_capacity(cap);\nfn pop_unbounded() {}\npop_unbounded();\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::UnboundedQueue));
    }

    #[test]
    fn unbounded_ctors_not_enforced_outside_service_crate() {
        let v = lint_source(
            Path::new("crates/bench/src/telemetry.rs"),
            "let (tx, rx) = mpsc::channel();\nlet buf = VecDeque::new();\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::UnboundedQueue));
    }

    #[test]
    fn raw_comm_calls_flagged_outside_runtime() {
        for src in [
            "cluster.comm().record_get(from, to, 8)?;\n",
            "comm.record_put(from, to, bytes).unwrap();\n",
            "let _ = comm.record_on(from, home);\n",
            "comm.record_local(here);\n",
            "comm.record_retry(here);\n",
        ] {
            let v = lint_source(Path::new("crates/collections/src/dist_vector.rs"), src);
            assert_eq!(
                v.iter().filter(|v| v.rule == Rule::RawComm).count(),
                1,
                "expected exactly one raw-comm hit for {src:?}"
            );
        }
    }

    #[test]
    fn raw_comm_ok_inside_runtime() {
        let v = lint_source(
            Path::new("crates/runtime/src/lib.rs"),
            "self.comm.record_get(from, owner, bytes)\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::RawComm));
    }

    #[test]
    fn raw_comm_word_boundary_respected() {
        // `record_gets` / prose-like identifiers are not the charging calls,
        // and mentions in strings or comments are stripped before matching.
        let v = lint_str(
            "let record_gets = stats.gets;\n// record_put is runtime-internal\nlet s = \"record_on\";\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::RawComm));
    }

    #[test]
    fn raw_placement_flagged_in_rcuarray_outside_placement_map() {
        for src in [
            "let home = cursor.take();\nlet next = home.next_round_robin(n);\n",
            "let cursor = RoundRobinCounter::new(n);\n",
        ] {
            let v = lint_source(Path::new("crates/rcuarray/src/array.rs"), src);
            assert_eq!(
                v.iter().filter(|v| v.rule == Rule::RawPlacement).count(),
                1,
                "expected exactly one raw-placement hit for {src:?}"
            );
        }
    }

    #[test]
    fn raw_placement_ok_inside_placement_map() {
        let v = lint_source(
            Path::new("crates/rcuarray/src/placement.rs"),
            "let cursor = RoundRobinCounter::new(n);\nlet next = home.next_round_robin(n);\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::RawPlacement));
    }

    #[test]
    fn raw_placement_not_enforced_outside_rcuarray() {
        // The runtime defines the counter; collections use their own
        // spreading logic — rule 10 scopes to crates/rcuarray only.
        let v = lint_source(
            Path::new("crates/runtime/src/dist.rs"),
            "pub struct RoundRobinCounter { next: AtomicU32 }\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::RawPlacement));
    }

    #[test]
    fn raw_placement_word_boundary_respected() {
        let v = lint_source(
            Path::new("crates/rcuarray/src/array.rs"),
            "let my_next_round_robin_ish = 1;\ncall(XRoundRobinCounterY);\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::RawPlacement));
    }

    #[test]
    fn non_relaxed_fetch_add_not_a_counter() {
        // AcqRel fetch_add is synchronization, not statistics; rule 4
        // only targets relaxed tallies.
        let v = lint_source(
            Path::new("crates/ebr/src/new_module.rs"),
            "self.seq.fetch_add(1, Ordering::AcqRel);\n",
        );
        assert!(!v.iter().any(|v| v.rule == Rule::BareCounterOutsideObs));
    }
}
