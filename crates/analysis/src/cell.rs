//! [`CheckedCell`]: plain (non-atomic) shared data for checker harnesses.
//!
//! This is the analogue of loom's `UnsafeCell`: test harnesses model the
//! *data* protected by a synchronization protocol with `CheckedCell`s, and
//! the checker flags any pair of conflicting accesses that are not
//! ordered by happens-before — i.e. the accesses that would be undefined
//! behavior if the data were accessed through real unsynchronized memory.
//!
//! Inside a checker session, execution is serialized (one thread runs
//! between scheduling points), so the underlying accesses never actually
//! overlap; races are *detected* via vector clocks, not suffered.

use std::cell::UnsafeCell;

#[cfg(feature = "check")]
use crate::checker::LocSlot;

/// A shared cell of plain data whose accesses are race-checked when a
/// checker session is active (requires the `check` feature; otherwise it
/// is a plain unsynchronized cell for single-threaded use).
pub struct CheckedCell<T> {
    inner: UnsafeCell<T>,
    #[cfg(feature = "check")]
    meta: LocSlot,
}

impl<T: Default> Default for CheckedCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

// SAFETY: `CheckedCell` is a checking harness primitive. Within checker
// sessions all accesses are serialized by the scheduler, so shared
// references never produce overlapping loads/stores; the point of the
// type is to *report* the schedules in which the protocol under test
// fails to order them.
unsafe impl<T: Send> Send for CheckedCell<T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send> Sync for CheckedCell<T> {}

impl<T> CheckedCell<T> {
    pub const fn new(v: T) -> Self {
        CheckedCell {
            inner: UnsafeCell::new(v),
            #[cfg(feature = "check")]
            meta: LocSlot::new(),
        }
    }

    /// Read the value (a checked plain-data load).
    #[track_caller]
    pub fn read(&self) -> T
    where
        T: Copy,
    {
        #[cfg(feature = "check")]
        {
            // SAFETY: serialized by the session scheduler (see type docs).
            crate::checker::data_read(&self.meta, || unsafe { *self.inner.get() })
        }
        #[cfg(not(feature = "check"))]
        {
            // SAFETY: without `check` this type is only used single-threaded.
            unsafe { *self.inner.get() }
        }
    }

    /// Write the value (a checked plain-data store).
    #[track_caller]
    pub fn write(&self, v: T) {
        #[cfg(feature = "check")]
        {
            // SAFETY: serialized by the session scheduler (see type docs).
            crate::checker::data_write(&self.meta, || unsafe { *self.inner.get() = v })
        }
        #[cfg(not(feature = "check"))]
        {
            // SAFETY: without `check` this type is only used single-threaded.
            unsafe { *self.inner.get() = v }
        }
    }

    /// Exclusive access (no checking needed: `&mut` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: std::fmt::Debug + Copy> std::fmt::Debug for CheckedCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // SAFETY: debug peek; serialized in sessions, single-threaded otherwise.
        let v = unsafe { *self.inner.get() };
        f.debug_tuple("CheckedCell").field(&v).finish()
    }
}
