//! Source-DPOR exploration for the deterministic checker.
//!
//! [`Policy::Dpor`](crate::sched::Policy::Dpor) replaces seeded sampling
//! with systematic exploration of the Mazurkiewicz trace space: two
//! executions are equivalent iff they order every pair of *dependent*
//! operations (same location, at least one write — see
//! `checker::dependent`) the same way, and the explorer aims to execute
//! exactly one representative per equivalence class.
//!
//! The loop (Flanagan–Godefroid persistent sets + Godefroid sleep sets):
//!
//! 1. Run the program once under a forced schedule prefix (empty for the
//!    first run) with a deterministic round-robin default past the
//!    prefix; the engine records a trace: `(thread, op, enabled set)`
//!    per scheduling step.
//! 2. Replay the trace through *dependence clocks* — vector clocks that
//!    track only program order, spawn/join edges, and same-location
//!    conflicts. Unlike the checker's synchronization clocks (where a
//!    `SeqCst` op orders against every other through the SC clock — true
//!    for memory semantics, fatal for exploration), dependence clocks
//!    leave differently-located operations unordered, so each dependent
//!    pair that executed back-to-back-unordered becomes a *backtrack
//!    point*: at the earlier step's node, the later op's thread must also
//!    be tried.
//! 3. Pick the deepest node with an untried backtrack thread, force the
//!    schedule prefix up to it plus that thread, and carry a *sleep set*:
//!    the choices already explored from that node. A sleeping thread is
//!    skipped by default picks until some executed op is dependent with
//!    its recorded next op (the wake rule); an execution whose enabled
//!    threads are all asleep is aborted as redundant.
//! 4. Stop when no untried branch remains (`complete`) or the execution
//!    budget (`Config::iterations`) is spent (`remaining` > 0).
//!
//! An optional preemption bound skips branches whose forced prefix would
//! exceed the bound; skipped branches are counted, never silently lost.
//!
//! Failing schedules are shrunk by [`minimize`] (shortest failing prefix
//! by bisection, then ddmin-style chunk deletion, every candidate
//! re-validated by a forced replay) and serialized with
//! [`serialize_schedule`] into the form [`Checker::replay`] accepts.
//!
//! [`Checker::replay`]: crate::checker::Checker::replay

use std::collections::{BTreeSet, HashMap};

use crate::checker::{wakes, Op, SleepEntry, TraceStep};
use crate::clock::VectorClock;

/// Exploration accounting, reported as [`Report::dpor`].
///
/// [`Report::dpor`]: crate::checker::Report::dpor
#[derive(Clone, Debug, Default)]
pub struct DporReport {
    /// Executions actually run (including redundant-aborted ones).
    pub executions: usize,
    /// Branches provably redundant (sleep sets) or skipped by the
    /// preemption bound.
    pub pruned: usize,
    /// Untried backtrack branches left when exploration stopped; `0`
    /// with [`complete`](Self::complete) means the space was exhausted.
    pub remaining: usize,
    /// Exploration finished because no untried branch remained (rather
    /// than hitting the execution budget).
    pub complete: bool,
}

impl std::fmt::Display for DporReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dpor: {} execution(s), {} pruned, {} branch(es) remaining ({})",
            self.executions,
            self.pruned,
            self.remaining,
            if self.complete {
                "exhausted"
            } else {
                "budget-bounded"
            }
        )
    }
}

/// One planned execution: force this schedule prefix, then default
/// round-robin; `sleep` applies (wake rule included) from trace index
/// `sleep_from` on.
pub(crate) struct PlannedRun {
    pub(crate) schedule: Vec<usize>,
    pub(crate) sleep: Vec<SleepEntry>,
    pub(crate) sleep_from: usize,
}

/// One decision point along the currently-explored path.
struct Node {
    /// Thread executed here on the current path.
    choice: usize,
    /// The operation `choice` executed.
    op: Op,
    /// Enabled threads at the decision (fixed by the prefix: determinism
    /// makes it identical across runs sharing the prefix).
    enabled: Vec<usize>,
    /// Threads that must additionally be tried here (from dependence
    /// races in explored traces).
    backtrack: BTreeSet<usize>,
    /// Choices already explored from here, with the op each executed
    /// (they become the sleep set of later siblings).
    done: Vec<(usize, Op)>,
    /// Sleep set on entry to this node along the current path.
    sleep_entry: Vec<SleepEntry>,
    /// Backtrack candidates skipped (sleep-redundant or over the
    /// preemption bound) — never re-tried, counted in the report.
    pruned: BTreeSet<usize>,
    /// Location watermark before this step: ids below it are stable
    /// across executions sharing the prefix (see `checker::wakes`).
    watermark: usize,
}

/// Per-location dependence state while replaying a trace.
#[derive(Default)]
struct LocState {
    /// Last write: `(trace index, thread, thread-local clock at write)`.
    write: Option<(usize, usize, u64)>,
    write_clock: VectorClock,
    /// Reads since the last write.
    reads: Vec<(usize, usize, u64)>,
    read_clock: VectorClock,
}

/// The source-DPOR explorer: owns the node stack for the current path
/// and hands the checker one [`PlannedRun`] at a time.
pub(crate) struct Explorer {
    nodes: Vec<Node>,
    bound: Option<usize>,
    started: bool,
    executions: usize,
    pruned_sleep: usize,
    pruned_bound: usize,
    redundant_runs: usize,
    /// Branch point of the run in flight: `(node index, sleep handed to
    /// the engine)` — consumed by [`integrate`](Self::integrate).
    pending: Option<(usize, Vec<SleepEntry>)>,
}

impl Explorer {
    pub(crate) fn new(preemption_bound: Option<usize>) -> Self {
        Explorer {
            nodes: Vec::new(),
            bound: preemption_bound,
            started: false,
            executions: 0,
            pruned_sleep: 0,
            pruned_bound: 0,
            redundant_runs: 0,
            pending: None,
        }
    }

    /// The next execution to run, or `None` when every backtrack branch
    /// has been explored or pruned.
    pub(crate) fn next_run(&mut self) -> Option<PlannedRun> {
        if !self.started {
            self.started = true;
            return Some(PlannedRun {
                schedule: Vec::new(),
                sleep: Vec::new(),
                sleep_from: 0,
            });
        }
        for i in (0..self.nodes.len()).rev() {
            loop {
                let b = {
                    let n = &self.nodes[i];
                    n.backtrack
                        .iter()
                        .copied()
                        .find(|b| !n.done.iter().any(|e| e.0 == *b) && !n.pruned.contains(b))
                };
                let Some(b) = b else { break };
                // Prune only on *reliable* sleep entries: an op whose
                // location was stamped after the entry's own divergence
                // watermark may name a different object on this path, so
                // id-based matching can't be trusted — explore instead.
                let reliably_asleep = self.nodes[i]
                    .sleep_entry
                    .iter()
                    .any(|&(t, s, w)| t == b && (!s.kind.is_memory() || s.loc < w));
                if reliably_asleep {
                    // Its next op was already explored from an ancestor
                    // and nothing dependent ran since: provably redundant.
                    self.pruned_sleep += 1;
                    self.nodes[i].pruned.insert(b);
                    continue;
                }
                if let Some(bound) = self.bound {
                    if self.prefix_preemptions(i, b) > bound {
                        self.pruned_bound += 1;
                        self.nodes[i].pruned.insert(b);
                        continue;
                    }
                }
                // Commit to branch `b` at node `i`: previously explored
                // siblings go to sleep, the path below `i` is discarded.
                // Done entries originate here, so they carry this node's
                // watermark.
                let w = self.nodes[i].watermark;
                let sleep: Vec<SleepEntry> = self.nodes[i]
                    .sleep_entry
                    .iter()
                    .copied()
                    .chain(self.nodes[i].done.iter().map(|&(t, op)| (t, op, w)))
                    .collect();
                self.nodes[i].done.push((b, Op::NONE));
                self.nodes[i].choice = b;
                self.nodes.truncate(i + 1);
                let mut schedule: Vec<usize> = self.nodes[..i].iter().map(|n| n.choice).collect();
                schedule.push(b);
                self.pending = Some((i, sleep.clone()));
                return Some(PlannedRun {
                    schedule,
                    sleep,
                    sleep_from: i,
                });
            }
        }
        None
    }

    /// Preemptions in the forced prefix `choices[0..i] ++ [b]`: context
    /// switches away from a still-enabled thread. (The default scheduler
    /// past the prefix only preempts on yields, so the prefix dominates.)
    fn prefix_preemptions(&self, i: usize, b: usize) -> usize {
        let mut count = 0;
        for k in 1..=i {
            let prev = self.nodes[k - 1].choice;
            let cur = if k == i { b } else { self.nodes[k].choice };
            if cur != prev && self.nodes[k].enabled.contains(&prev) {
                count += 1;
            }
        }
        count
    }

    /// Fold an executed trace back in: extend the node stack, evolve
    /// sleep sets along the new path, and add backtrack points for every
    /// dependence race in the trace.
    pub(crate) fn integrate(&mut self, trace: &[TraceStep], redundant: bool) {
        self.executions += 1;
        if redundant {
            self.redundant_runs += 1;
        }
        let (start, mut cur_sleep) = match self.pending.take() {
            Some((i, sleep)) => (i, sleep),
            None => (0, Vec::new()),
        };
        // An aborted run can be shorter than the retained prefix.
        if self.nodes.len() > trace.len() {
            self.nodes.truncate(trace.len());
        }
        for (k, step) in trace.iter().enumerate().skip(start) {
            if k < self.nodes.len() {
                // The branch node: record the op the new choice executed.
                let n = &mut self.nodes[k];
                n.choice = step.thread;
                n.op = step.op;
                if let Some(e) = n.done.iter_mut().find(|e| e.0 == step.thread) {
                    e.1 = step.op;
                }
            } else {
                self.nodes.push(Node {
                    choice: step.thread,
                    op: step.op,
                    enabled: step.enabled.clone(),
                    backtrack: BTreeSet::new(),
                    done: vec![(step.thread, step.op)],
                    sleep_entry: cur_sleep.clone(),
                    pruned: BTreeSet::new(),
                    watermark: step.watermark,
                });
            }
            // Wake rule along the path: the next node's entry sleep.
            cur_sleep.retain(|&(_, s, w)| !wakes(s, w, step.op));
        }
        self.add_backtracks(trace);
    }

    fn add_backtracks(&mut self, trace: &[TraceStep]) {
        for (k1, k2) in dependence_races(trace) {
            let p2 = trace[k2].thread;
            if k1 >= self.nodes.len() {
                continue;
            }
            let n = &mut self.nodes[k1];
            if n.choice == p2 {
                continue;
            }
            if n.enabled.contains(&p2) {
                if !n.done.iter().any(|e| e.0 == p2) {
                    n.backtrack.insert(p2);
                }
            } else {
                // The racing thread was not yet schedulable here (e.g.
                // blocked): conservatively try every other enabled thread.
                let adds: Vec<usize> = n
                    .enabled
                    .iter()
                    .copied()
                    .filter(|&c| c != n.choice && !n.done.iter().any(|e| e.0 == c))
                    .collect();
                n.backtrack.extend(adds);
            }
        }
    }

    /// Untried (and unpruned) backtrack branches across the node stack.
    pub(crate) fn frontier(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                n.backtrack
                    .iter()
                    .filter(|b| !n.done.iter().any(|e| e.0 == **b) && !n.pruned.contains(b))
                    .count()
            })
            .sum()
    }

    pub(crate) fn stats(&self) -> DporReport {
        DporReport {
            executions: self.executions,
            pruned: self.pruned_sleep + self.pruned_bound + self.redundant_runs,
            remaining: self.frontier(),
            complete: false,
        }
    }
}

/// All dependent-and-unordered event pairs `(earlier, later)` of a
/// trace, under dependence clocks: program order, spawn/join edges, and
/// same-location conflict edges only.
fn dependence_races(trace: &[TraceStep]) -> Vec<(usize, usize)> {
    use crate::checker::OpKind;
    let mut clocks: Vec<VectorClock> = Vec::new();
    let mut locs: HashMap<usize, LocState> = HashMap::new();
    let mut races = Vec::new();
    let ensure = |clocks: &mut Vec<VectorClock>, t: usize| {
        if clocks.len() <= t {
            clocks.resize_with(t + 1, VectorClock::new);
        }
    };
    for (k, step) in trace.iter().enumerate() {
        let p = step.thread;
        ensure(&mut clocks, p);
        match step.op.kind {
            OpKind::Spawn => {
                clocks[p].tick(p);
                let child = step.op.loc;
                ensure(&mut clocks, child);
                clocks[child] = clocks[p].clone();
            }
            OpKind::Join => {
                clocks[p].tick(p);
                let target = step.op.loc;
                if target < clocks.len() {
                    let tc = clocks[target].clone();
                    clocks[p].join(&tc);
                }
            }
            OpKind::Step | OpKind::Yield => {
                clocks[p].tick(p);
            }
            OpKind::Load | OpKind::DataRead => {
                let at = clocks[p].tick(p);
                let ls = locs.entry(step.op.loc).or_default();
                if let Some((wi, wt, wat)) = ls.write {
                    if wt != p && clocks[p].get(wt) < wat {
                        races.push((wi, k));
                    }
                }
                clocks[p].join(&ls.write_clock);
                ls.reads.retain(|&(_, rt, _)| rt != p);
                ls.reads.push((k, p, at));
                ls.read_clock.join(&clocks[p]);
            }
            OpKind::Store | OpKind::Rmw | OpKind::DataWrite | OpKind::Sync => {
                let at = clocks[p].tick(p);
                let ls = locs.entry(step.op.loc).or_default();
                if let Some((wi, wt, wat)) = ls.write {
                    if wt != p && clocks[p].get(wt) < wat {
                        races.push((wi, k));
                    }
                }
                for &(ri, rt, rat) in &ls.reads {
                    if rt != p && clocks[p].get(rt) < rat {
                        races.push((ri, k));
                    }
                }
                clocks[p].join(&ls.write_clock);
                let rc = ls.read_clock.clone();
                clocks[p].join(&rc);
                ls.write_clock = clocks[p].clone();
                ls.read_clock.clear();
                ls.reads.clear();
                ls.write = Some((k, p, at));
            }
        }
    }
    races
}

// ---------------------------------------------------------------------------
// Schedule serialization + minimization
// ---------------------------------------------------------------------------

/// Serialize a schedule (thread index per step) as a run-length-encoded
/// string: `"0*3,1,0*2"` means thread 0 thrice, thread 1 once, thread 0
/// twice. The empty schedule serializes to `""` (replaying it runs the
/// deterministic default schedule).
pub fn serialize_schedule(schedule: &[usize]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < schedule.len() {
        let t = schedule[i];
        let mut n = 1;
        while i + n < schedule.len() && schedule[i + n] == t {
            n += 1;
        }
        if !out.is_empty() {
            out.push(',');
        }
        if n == 1 {
            out.push_str(&t.to_string());
        } else {
            out.push_str(&format!("{t}*{n}"));
        }
        i += n;
    }
    out
}

/// Like [`serialize_schedule`] but truncated to `cap` steps (budget-abort
/// prefixes can be tens of thousands of steps long).
pub(crate) fn serialize_schedule_capped(schedule: &[usize], cap: usize) -> String {
    if schedule.len() <= cap {
        serialize_schedule(schedule)
    } else {
        format!(
            "{},… (+{} more steps)",
            serialize_schedule(&schedule[..cap]),
            schedule.len() - cap
        )
    }
}

/// Parse a schedule serialized by [`serialize_schedule`].
pub fn parse_schedule(s: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    if s.trim().is_empty() {
        return Ok(out);
    }
    for part in s.split(',') {
        let part = part.trim();
        let (t, n) = match part.split_once('*') {
            Some((t, n)) => (
                t.trim(),
                n.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad repeat count {n:?}: {e}"))?,
            ),
            None => (part, 1),
        };
        let t = t
            .parse::<usize>()
            .map_err(|e| format!("bad thread index {t:?}: {e}"))?;
        if n == 0 || n > 1_000_000 {
            return Err(format!("repeat count out of range: {n}"));
        }
        for _ in 0..n {
            out.push(t);
        }
    }
    Ok(out)
}

/// Shrink a failing schedule: find the shortest failing prefix by
/// bisection, then delete chunks ddmin-style, re-validating every
/// candidate with `fails` (a forced replay). Deterministic; bounded to
/// ~100 replays.
pub(crate) fn minimize(schedule: &[usize], fails: &dyn Fn(&[usize]) -> bool) -> Vec<usize> {
    const MAX_PROBES: usize = 96;
    let mut best = schedule.to_vec();
    let mut probes = 1;
    if !fails(&best) {
        // The truncated schedule alone doesn't reproduce (the failure
        // needed the default continuation in a way truncation broke):
        // report it unminimized rather than loop.
        return best;
    }
    // Shortest failing prefix (bisection; re-verified below since the
    // predicate need not be monotone).
    let mut lo = 0usize;
    let mut hi = best.len();
    while lo < hi && probes < MAX_PROBES {
        let mid = (lo + hi) / 2;
        probes += 1;
        if fails(&best[..mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if hi < best.len() && probes < MAX_PROBES {
        probes += 1;
        if fails(&best[..hi]) {
            best.truncate(hi);
        }
    }
    // ddmin-style chunk deletion.
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 && probes < MAX_PROBES && !best.is_empty() {
        let mut i = 0;
        while i + chunk <= best.len() && probes < MAX_PROBES {
            let mut cand = best.clone();
            cand.drain(i..i + chunk);
            probes += 1;
            if fails(&cand) {
                best = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_roundtrip() {
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![0, 0, 0, 1, 0, 0, 2, 2],
            vec![5, 4, 3, 2, 1, 0],
            vec![1; 100],
        ];
        for sched in cases {
            let s = serialize_schedule(&sched);
            assert_eq!(parse_schedule(&s).unwrap(), sched, "via {s:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_schedule("a,b").is_err());
        assert!(parse_schedule("1*x").is_err());
        assert!(parse_schedule("1*0").is_err());
        assert!(parse_schedule("1*9999999999").is_err());
    }

    #[test]
    fn capped_serialization_notes_truncation() {
        let sched = vec![0; 10];
        let s = serialize_schedule_capped(&sched, 4);
        assert!(s.contains("more steps"), "{s}");
        assert_eq!(serialize_schedule_capped(&sched, 10), "0*10");
    }

    #[test]
    fn minimize_shrinks_to_the_failing_core() {
        // Fails iff the schedule contains the subsequence [1, 2].
        let fails = |s: &[usize]| {
            let mut saw1 = false;
            for &t in s {
                if t == 1 {
                    saw1 = true;
                } else if t == 2 && saw1 {
                    return true;
                }
            }
            false
        };
        let noisy: Vec<usize> = vec![0, 0, 3, 1, 0, 0, 3, 2, 0, 0, 0, 3];
        let min = minimize(&noisy, &fails);
        assert!(fails(&min));
        assert!(min.len() <= 2, "{min:?}");
    }

    #[test]
    fn minimize_keeps_non_reproducing_input() {
        let never = |_: &[usize]| false;
        let sched = vec![0, 1, 2];
        assert_eq!(minimize(&sched, &never), sched);
    }
}
