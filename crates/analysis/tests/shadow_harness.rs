//! Shadow-heap oracle harnesses: retire/reclaim lifecycle bugs become
//! deterministic checker reports.
//!
//! The mutation at the center: an *injected early free* — a scheme that
//! runs a retired object's destructor without waiting for its reader.
//! Address-based sanitizers catch this only when the allocator happens
//! to reuse the page; the shadow table (keyed by fresh id, validated
//! inside the access's scheduling step) catches it on the first racy
//! interleaving, and `Policy::Dpor` guarantees that interleaving is
//! reached on every run.

#![cfg(feature = "check")]

use rcuarray_analysis::shadow::TrackedCell;
use rcuarray_analysis::{thread, Checker, Config, Policy, ShadowKind};
use rcuarray_baselines::HazardDomain;
use rcuarray_reclaim::{Reclaim, Retired};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

fn dpor_config(budget: usize) -> Config {
    Config {
        policy: Policy::Dpor,
        iterations: budget,
        ..Config::default()
    }
}

/// The injected early-free: retire + run the destructor immediately,
/// with a reader still active. Exhaustive exploration must reach the
/// read-after-reclaim interleaving on every run, report it with a
/// minimized schedule, and that schedule must replay.
#[test]
fn injected_early_free_caught_on_every_dpor_run() {
    let scenario = || {
        let cell = Arc::new(TrackedCell::new("early-free-payload", 7u64));
        let c2 = cell.clone();
        let reader = thread::spawn(move || {
            let _ = c2.read();
        });
        // Mutation: the destructor runs with no reader drain whatsoever.
        Retired::new(|| {}).tracked(cell.id()).run();
        let _ = reader.join();
    };

    for round in 0..2 {
        let report = Checker::new(dpor_config(64)).run(scenario);
        assert!(
            !report.shadow.is_empty(),
            "round {round}: early free not caught: {report}"
        );
        let v = report.shadow[0].clone();
        assert_eq!(v.kind, ShadowKind::UseAfterReclaim, "round {round}: {v}");
        assert_eq!(v.label, "early-free-payload");
        let schedule = v
            .schedule
            .clone()
            .expect("DPOR violations carry a schedule");

        let replay = Checker::replay(schedule.as_str(), &Config::default(), scenario);
        assert!(
            !replay.shadow.is_empty(),
            "round {round}: schedule {schedule:?} did not reproduce"
        );
        assert_eq!(replay.shadow[0].kind, ShadowKind::UseAfterReclaim);
    }
}

/// The fixed protocol — destructor runs only after the reader is joined
/// — must be clean under the same exhaustive exploration.
#[test]
fn drain_before_reclaim_is_clean_and_complete() {
    let report = Checker::new(dpor_config(128)).run(|| {
        let cell = Arc::new(TrackedCell::new("drained-payload", 7u64));
        let c2 = cell.clone();
        let reader = thread::spawn(move || {
            let _ = c2.read();
        });
        let retired = Retired::new(|| {}).tracked(cell.id());
        let _ = reader.join();
        // Reader drained: reclaiming is now legal.
        retired.run();
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.leaks.is_empty(), "{report}");
    let dpor = report.dpor.as_ref().unwrap();
    assert!(dpor.complete, "{dpor}");
}

/// Double-retire: two `tracked()` calls on the same id.
#[test]
fn double_retire_reported() {
    let report = Checker::new(dpor_config(16)).run(|| {
        let cell = TrackedCell::new("retired-twice", 1u64);
        let a = Retired::new(|| {}).tracked(cell.id());
        let b = Retired::new(|| {}).tracked(cell.id());
        let _ = cell.read();
        a.run();
        b.leak();
    });
    assert!(
        report
            .shadow
            .iter()
            .any(|v| v.kind == ShadowKind::DoubleRetire && v.label == "retired-twice"),
        "{report}"
    );
}

/// Retired but never reclaimed: reported as a leak at session end, with
/// the byte hint from registration.
#[test]
fn never_reclaimed_retired_object_reported_as_leak() {
    let report = Checker::new(dpor_config(8)).run(|| {
        let cell = TrackedCell::new("forgotten", 3u64);
        // Retire, then drop the Retired guard's destructor on the floor
        // by never running it (std::mem::forget on the *retired*, not a
        // guard — the lint only bans forgetting read guards).
        let retired = Retired::new(|| {}).tracked(cell.id());
        std::mem::forget(retired);
    });
    assert!(
        report.leaks.iter().any(|l| l.label == "forgotten"),
        "{report}"
    );
    // Leaks are accounting, not violations: the report stays "clean".
    assert!(report.races.is_empty() && report.shadow.is_empty());
}

/// `Retired::leak` is a *deliberate* leak: it must NOT show up in leak
/// accounting (that is what makes LeakReclaim's reports quiet).
#[test]
fn deliberate_leak_is_not_reported() {
    let report = Checker::new(dpor_config(8)).run(|| {
        let cell = TrackedCell::new("deliberate", 3u64);
        Retired::new(|| {}).tracked(cell.id()).leak();
        let _ = cell.read();
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.leaks.is_empty(), "{report}");
}

/// The hazard-pointer baseline's protect-revalidate path, tracked end to
/// end: the reader protects the pointer and reads the tracked payload;
/// the writer retires it through the domain afterwards, so the oracle
/// must see destructor-after-read and stay quiet.
///
/// The reader is drained (joined) before the retire: the baseline's slot
/// scan spins on bare std atomics, which the cooperative scheduler can
/// neither observe nor preempt — a schedule that runs the scan against a
/// still-set hazard would wedge. That also means the hazard handshake
/// itself contributes no interleavings here; what the oracle checks is
/// the retire→reclaim lifecycle threading through `HazardDomain::retire`.
#[test]
fn hazard_protect_revalidate_clean_under_dpor() {
    let report = Checker::new(dpor_config(128)).run(|| {
        let domain = Arc::new(HazardDomain::new());
        let cell = Arc::new(TrackedCell::new("hazard-payload", 11u64));
        let src = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(11u64))));

        let (d2, c2, s2) = (domain.clone(), cell.clone(), src.clone());
        let reader = thread::spawn(move || {
            let guard = d2.read_lock();
            let p = guard.protect(&s2);
            // SAFETY: protected above, and the retire runs after join.
            let raw = unsafe { *p };
            assert_eq!(raw, c2.read());
        });
        reader.join().unwrap();

        let addr = src.load(Ordering::SeqCst) as usize;
        domain.retire(
            Retired::with_hint(std::mem::size_of::<u64>(), addr, move || {
                // SAFETY: single owner; the only reader has joined.
                drop(unsafe { Box::from_raw(addr as *mut u64) });
            })
            .tracked(cell.id()),
        );
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.leaks.is_empty(), "{report}");
}
