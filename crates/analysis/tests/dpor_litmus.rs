//! DPOR exhaustiveness sanity suite.
//!
//! Two families of evidence that `Policy::Dpor` actually explores the
//! whole (bounded) interleaving space instead of sampling it:
//!
//! 1. **Litmus enumeration** — the 2-thread store-buffering shape has a
//!    known, tiny Mazurkiewicz trace count; the explorer must terminate
//!    (`complete`), observe every legal outcome, and never the illegal
//!    one, on a single run with no seed sweep.
//! 2. **Mutation matrix** — seeded ordering bugs (the relaxed-publication
//!    message-passing mutation, and the real EBR zone in its unsound
//!    `Relaxed` mode over in `ebr_modes.rs`) must be detected on *every*
//!    run, with a minimized counterexample schedule that
//!    [`Checker::replay`] accepts and reproduces.

#![cfg(feature = "check")]

use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_analysis::{thread, CheckedCell, Checker, Config, Policy, RaceKind};
use std::collections::HashSet;
use std::sync::{Arc, Mutex as StdMutex};

fn dpor_config(budget: usize) -> Config {
    Config {
        policy: Policy::Dpor,
        iterations: budget,
        ..Config::default()
    }
}

/// Store buffering: T0 does `x = 1; r0 = y`, T1 does `y = 1; r1 = x`.
/// Under the checker's serialized (sequentially consistent) execution,
/// `(r0, r1) = (0, 0)` is impossible, and the dependent-pair orderings
/// (Wx vs Rx) × (Wy vs Ry) admit exactly 3 Mazurkiewicz traces: both
/// writes first is one class split by nothing, and "a whole thread runs
/// first" gives the other two.
#[test]
fn store_buffering_exhausts_and_enumerates_outcomes() {
    let outcomes: Arc<StdMutex<HashSet<(usize, usize)>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = outcomes.clone();
    let report = Checker::new(dpor_config(256)).run(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x0, y0) = (x.clone(), y.clone());
        let t0 = thread::spawn(move || {
            x0.store(1, Ordering::SeqCst);
            y0.load(Ordering::SeqCst)
        });
        let (x1, y1) = (x.clone(), y.clone());
        let t1 = thread::spawn(move || {
            y1.store(1, Ordering::SeqCst);
            x1.load(Ordering::SeqCst)
        });
        let r0 = t0.join().unwrap();
        let r1 = t1.join().unwrap();
        sink.lock().unwrap().insert((r0, r1));
    });
    let dpor = report.dpor.as_ref().expect("dpor stats present");
    assert!(dpor.complete, "exploration must exhaust: {dpor}");
    assert_eq!(dpor.remaining, 0, "{dpor}");
    assert!(report.races.is_empty(), "{report}");

    let seen = outcomes.lock().unwrap();
    let legal: HashSet<(usize, usize)> = [(0, 1), (1, 0), (1, 1)].into_iter().collect();
    assert_eq!(*seen, legal, "outcomes observed: {seen:?}");
    // 3 Mazurkiewicz classes; the explorer may additionally run a few
    // sleep-set-redundant executions (counted in `pruned`), but the
    // total must stay within the same tiny envelope — far below the 6
    // raw interleavings of the 4 memory events, let alone the full
    // schedule space with spawn/join steps.
    assert!(
        (3..=8).contains(&dpor.executions),
        "expected ~3 executions, got {dpor}"
    );
}

/// The relaxed-publication message-passing mutation from
/// `checker_basic.rs`, now under exhaustive exploration: the racing
/// interleaving must be *found on every run*, not on lucky seeds, and
/// the minimized schedule must replay.
#[test]
fn relaxed_message_passing_found_on_every_dpor_run() {
    let scenario = || {
        let shared = Arc::new((AtomicUsize::new(0), CheckedCell::new(0u64)));
        let s2 = shared.clone();
        let t = thread::spawn(move || {
            s2.1.write(7);
            // Mutation: relaxed publication — the flag store no longer
            // carries the payload write into the reader.
            s2.0.store(1, Ordering::Relaxed);
        });
        while shared.0.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        let _ = shared.1.read();
        t.join().unwrap();
    };

    // Determinism means twice is representative of always: no RNG is
    // consulted anywhere under Policy::Dpor.
    for round in 0..2 {
        let report = Checker::new(dpor_config(512)).run(scenario);
        assert!(
            !report.races.is_empty(),
            "round {round}: mutation not detected: {report}"
        );
        let race = report.first_race().unwrap().clone();
        assert_eq!(race.kind, RaceKind::WriteRead, "round {round}: {race}");
        let schedule = race
            .schedule
            .clone()
            .expect("DPOR counterexamples carry a schedule");

        // The minimized schedule replays to the same failure.
        let replay = Checker::replay(schedule.as_str(), &Config::default(), scenario);
        assert!(
            !replay.is_clean(),
            "round {round}: schedule {schedule:?} did not reproduce"
        );
        let again = replay.first_race().unwrap();
        assert_eq!(again.kind, RaceKind::WriteRead);
        assert_eq!(again.schedule.as_deref(), Some(schedule.as_str()));
    }
}

/// Correctly synchronized message passing must come out *clean and
/// complete* — exhaustiveness cuts both ways. The reader is loop-free
/// (one flag load, payload read only behind the flag): spin loops make
/// the trace space unbounded (every extra flag probe before the store is
/// its own Mazurkiewicz trace), so bounded harnesses meant for
/// exhaustion must be written without them.
#[test]
fn release_acquire_message_passing_clean_and_complete() {
    let report = Checker::new(dpor_config(256)).run(|| {
        let shared = Arc::new((AtomicUsize::new(0), CheckedCell::new(0u64)));
        let s2 = shared.clone();
        let t = thread::spawn(move || {
            s2.1.write(7);
            s2.0.store(1, Ordering::Release);
        });
        if shared.0.load(Ordering::Acquire) == 1 {
            assert_eq!(shared.1.read(), 7);
        }
        t.join().unwrap();
    });
    assert!(report.is_clean(), "{report}");
    let dpor = report.dpor.as_ref().unwrap();
    assert!(dpor.complete, "{dpor}");
}

/// A preemption bound of 0 restricts exploration to non-preemptive
/// schedules; the skipped branches must be *counted*, not lost.
#[test]
fn preemption_bound_prunes_and_reports() {
    let unbounded = Checker::new(dpor_config(256)).run(sb_scenario);
    let bounded = Checker::new(Config {
        preemption_bound: Some(0),
        ..dpor_config(256)
    })
    .run(sb_scenario);
    let (u, b) = (
        unbounded.dpor.as_ref().unwrap(),
        bounded.dpor.as_ref().unwrap(),
    );
    assert!(u.complete && b.complete, "{u} / {b}");
    assert!(
        b.executions <= u.executions,
        "bound must not widen exploration: {u} / {b}"
    );
}

fn sb_scenario() {
    let x = Arc::new(AtomicUsize::new(0));
    let y = Arc::new(AtomicUsize::new(0));
    let (x0, y0) = (x.clone(), y.clone());
    let t0 = thread::spawn(move || {
        x0.store(1, Ordering::SeqCst);
        y0.load(Ordering::SeqCst)
    });
    let (x1, y1) = (x.clone(), y.clone());
    let t1 = thread::spawn(move || {
        y1.store(1, Ordering::SeqCst);
        x1.load(Ordering::SeqCst)
    });
    let _ = t0.join();
    let _ = t1.join();
}

/// Budget-bounded exploration reports honestly: a budget of 1 cannot
/// exhaust the litmus, so `complete` must be false with branches
/// remaining.
#[test]
fn budget_exhaustion_reports_remaining_branches() {
    let report = Checker::new(dpor_config(1)).run(sb_scenario);
    let dpor = report.dpor.as_ref().unwrap();
    assert_eq!(report.iterations, 1);
    assert!(!dpor.complete, "{dpor}");
    assert!(dpor.remaining > 0, "{dpor}");
}
