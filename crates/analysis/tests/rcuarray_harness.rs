//! The real RCUArray under the checker: concurrent reads against a
//! resize, for both reclamation back-ends.
//!
//! The paper's core claim (§III-C): readers may run fully concurrent
//! with a resize; the writer installs the grown block table, waits out
//! the grace period, and only then frees the old table. Under the
//! checker this shows up as: no data race between a reader's element
//! access and the resizer's table teardown, on any explored schedule,
//! and every read returns either the pre- or post-resize view — never
//! garbage.
//!
//! One-locale topology: `coforall_locales` runs inline, so all
//! concurrency in the scenario is the reader/resizer threads the
//! harness spawns — exactly what the checker schedules.

#![cfg(feature = "check")]

use rcuarray::{Config as ArrayConfig, EbrArray, QsbrArray};
use rcuarray_analysis::{thread, Checker, Config};
use rcuarray_runtime::{Cluster, Topology};
use std::sync::Arc;

fn small_config() -> ArrayConfig {
    ArrayConfig {
        block_size: 2,
        account_comm: false,
        ..ArrayConfig::default()
    }
}

#[test]
fn ebr_read_concurrent_with_resize_is_clean() {
    let report = Checker::new(Config {
        base_seed: 0x5eed_0a01,
        iterations: 10,
        max_steps: 200_000,
        ..Config::default()
    })
    .run(|| {
        let cluster = Cluster::new(Topology::new(1, 1));
        let a: Arc<EbrArray<u64>> = Arc::new(EbrArray::with_config(&cluster, small_config()));
        a.resize(2);
        a.write(0, 5);
        a.write(1, 6);

        let r = a.clone();
        let reader = thread::spawn(move || {
            for _ in 0..2 {
                let v = r.read(0);
                assert_eq!(v, 5, "reader saw torn element");
                let w = r.read(1);
                assert_eq!(w, 6);
            }
        });

        // Concurrent grow: installs a larger block table and retires the
        // old one through the EBR grace period.
        a.resize(2);
        assert_eq!(a.capacity(), 4);
        assert_eq!(a.read(0), 5);

        reader.join().unwrap();
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
    assert!(report.budget_exhausted.is_empty(), "{report}");
}

#[test]
fn qsbr_read_concurrent_with_resize_is_clean() {
    let report = Checker::new(Config {
        base_seed: 0x5eed_0a02,
        iterations: 10,
        max_steps: 200_000,
        ..Config::default()
    })
    .run(|| {
        let cluster = Cluster::new(Topology::new(1, 1));
        let a: Arc<QsbrArray<u64>> = Arc::new(QsbrArray::with_config(&cluster, small_config()));
        a.resize(2);
        a.write(0, 5);

        let r = a.clone();
        let reader = thread::spawn(move || {
            let v = r.read(0);
            assert_eq!(v, 5, "reader saw torn element");
            // QSBR contract: announce quiescence when done reading, so
            // the resizer's deferred free can drain.
            r.checkpoint();
        });

        a.resize(2);
        assert_eq!(a.capacity(), 4);
        assert_eq!(a.read(0), 5);
        // Drain this thread's deferred frees from the resize.
        a.checkpoint();

        reader.join().unwrap();
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
    assert!(report.budget_exhausted.is_empty(), "{report}");
}

#[test]
fn ebr_writer_and_reader_on_disjoint_elements_clean() {
    let report = Checker::new(Config {
        base_seed: 0x5eed_0a03,
        iterations: 8,
        max_steps: 200_000,
        ..Config::default()
    })
    .run(|| {
        let cluster = Cluster::new(Topology::new(1, 1));
        let a: Arc<EbrArray<u64>> = Arc::new(EbrArray::with_config(&cluster, small_config()));
        a.resize(4);
        a.write(3, 30);

        let r = a.clone();
        let t = thread::spawn(move || {
            r.write(0, 10);
            assert_eq!(r.read(0), 10);
        });

        assert_eq!(a.read(3), 30);
        a.resize(2);
        t.join().unwrap();
        assert_eq!(a.read(0), 10);
    });
    assert!(report.is_clean(), "{report}");
}
