//! The real RCUArray under the checker: concurrent reads against a
//! resize, for both reclamation back-ends.
//!
//! The paper's core claim (§III-C): readers may run fully concurrent
//! with a resize; the writer installs the grown block table, waits out
//! the grace period, and only then frees the old table. Under the
//! checker this shows up as: no data race between a reader's element
//! access and the resizer's table teardown, on any explored schedule,
//! and every read returns either the pre- or post-resize view — never
//! garbage.
//!
//! One-locale topology: `coforall_locales` runs inline, so all
//! concurrency in the scenario is the reader/resizer threads the
//! harness spawns — exactly what the checker schedules.

#![cfg(feature = "check")]

use rcuarray::{
    AmortizedScheme, Config as ArrayConfig, EbrArray, EbrScheme, LeakScheme, QsbrScheme, RcuArray,
    Scheme,
};
use rcuarray_analysis::{thread, Checker, Config, Policy};
use rcuarray_runtime::{Cluster, Topology};
use std::sync::Arc;

fn small_config() -> ArrayConfig {
    ArrayConfig {
        block_size: 2,
        account_comm: false,
        // Exercise the amortized scheme's partial drains: one snapshot
        // per checkpoint. Ignored by the other schemes.
        drain_budget: 1,
        ..ArrayConfig::default()
    }
}

/// The paper's core scenario — a reader fully concurrent with a resize —
/// written once against the [`Scheme`] seam and instantiated per scheme.
/// `checkpoint` is the scheme-neutral quiescence announcement: a drain
/// under the QSBR family, a no-op under EBR and Leak.
fn read_concurrent_with_resize<S: Scheme>(cfg: Config) {
    let report = Checker::new(cfg).run(|| {
        let cluster = Cluster::new(Topology::new(1, 1));
        let a: Arc<RcuArray<u64, S>> = Arc::new(RcuArray::with_config(&cluster, small_config()));
        a.resize(2);
        a.write(0, 5);
        a.write(1, 6);

        let r = a.clone();
        let reader = thread::spawn(move || {
            for _ in 0..2 {
                let v = r.read(0);
                assert_eq!(v, 5, "reader saw torn element");
                let w = r.read(1);
                assert_eq!(w, 6);
            }
            r.checkpoint();
        });

        // Concurrent grow: installs a larger block table and retires the
        // old one through the scheme's reclamation protocol.
        a.resize(2);
        assert_eq!(a.capacity(), 4);
        assert_eq!(a.read(0), 5);
        a.checkpoint();

        reader.join().unwrap();
    });
    assert!(report.is_clean(), "[{}] {report}", S::NAME);
    assert!(report.deadlocks.is_empty(), "[{}] {report}", S::NAME);
    assert!(report.budget_exhausted.is_empty(), "[{}] {report}", S::NAME);
}

fn sampled(seed: u64) -> Config {
    Config {
        base_seed: seed,
        iterations: 10,
        max_steps: 200_000,
        ..Config::default()
    }
}

#[test]
fn ebr_read_concurrent_with_resize_is_clean() {
    read_concurrent_with_resize::<EbrScheme>(sampled(0x5eed_0a01));
}

#[test]
fn qsbr_read_concurrent_with_resize_is_clean() {
    read_concurrent_with_resize::<QsbrScheme>(sampled(0x5eed_0a02));
}

#[test]
fn amortized_read_concurrent_with_resize_is_clean() {
    read_concurrent_with_resize::<AmortizedScheme>(sampled(0x5eed_0a04));
}

#[test]
fn leak_read_concurrent_with_resize_is_clean() {
    read_concurrent_with_resize::<LeakScheme>(sampled(0x5eed_0a05));
}

/// The paper's core scenario under [`Policy::Dpor`] for both deferred
/// back-ends: systematic schedule enumeration of the read-vs-resize
/// window instead of seed sampling. The array's grace-period machinery
/// spins, so the budget bounds the exploration, not exhaustion.
#[test]
fn ebr_read_concurrent_with_resize_clean_under_dpor() {
    read_concurrent_with_resize::<EbrScheme>(Config {
        policy: Policy::Dpor,
        iterations: 12,
        max_steps: 200_000,
        ..Config::default()
    });
}

#[test]
fn qsbr_read_concurrent_with_resize_clean_under_dpor() {
    read_concurrent_with_resize::<QsbrScheme>(Config {
        policy: Policy::Dpor,
        iterations: 12,
        max_steps: 200_000,
        ..Config::default()
    });
}

#[test]
fn leak_scheme_never_frees_under_the_checker() {
    // The leak scheme's contract, verified on every explored schedule: a
    // retired snapshot is counted but its destructor never runs (so a
    // double-drop is impossible by construction) and the defer count only
    // grows — one retired snapshot per locale per resize, none reclaimed.
    let report = Checker::new(Config {
        base_seed: 0x5eed_0a06,
        iterations: 8,
        max_steps: 200_000,
        ..Config::default()
    })
    .run(|| {
        let cluster = Cluster::new(Topology::new(1, 1));
        let a: Arc<RcuArray<u64, LeakScheme>> =
            Arc::new(RcuArray::with_config(&cluster, small_config()));
        let mut last_retired = 0;
        for i in 1..=3u64 {
            a.resize(2);
            assert_eq!(a.checkpoint(), 0, "leak checkpoint must free nothing");
            let s = a.stats().reclaim;
            assert_eq!(s.retired, i, "one retired snapshot per resize");
            assert_eq!(s.reclaimed, 0, "leak scheme must never reclaim");
            assert_eq!(s.pending, i, "everything retired stays pending");
            assert!(s.retired > last_retired, "defer count must be monotone");
            last_retired = s.retired;
        }
    });
    assert!(report.is_clean(), "{report}");
}

#[test]
fn ebr_writer_and_reader_on_disjoint_elements_clean() {
    let report = Checker::new(Config {
        base_seed: 0x5eed_0a03,
        iterations: 8,
        max_steps: 200_000,
        ..Config::default()
    })
    .run(|| {
        let cluster = Cluster::new(Topology::new(1, 1));
        let a: Arc<EbrArray<u64>> = Arc::new(EbrArray::with_config(&cluster, small_config()));
        a.resize(4);
        a.write(3, 30);

        let r = a.clone();
        let t = thread::spawn(move || {
            r.write(0, 10);
            assert_eq!(r.read(0), 10);
        });

        assert_eq!(a.read(3), 30);
        a.resize(2);
        t.join().unwrap();
        assert_eq!(a.read(0), 10);
    });
    assert!(report.is_clean(), "{report}");
}
