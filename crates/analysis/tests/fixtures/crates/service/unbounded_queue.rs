// Lint fixture (rule 8): an unbounded channel in the serving layer.
// The fixture lives under a `crates/service/` path inside the fixtures
// tree so rule 8's path scoping matches, while the `fixtures` directory
// itself is skipped by the normal lint walk.

fn leak_the_request_path() {
    let (tx, rx) = std::sync::mpsc::channel();
    let mut backlog = std::collections::VecDeque::new();
    backlog.push_back(tx);
    drop(rx);
}
