// Lint fixture (rule 10): raw round-robin placement inside
// `crates/rcuarray/` but outside `src/placement.rs`. The fixture lives
// under a `crates/rcuarray/` path inside the fixtures tree so rule 10's
// path scoping matches, while the `fixtures` directory itself is
// skipped by the normal lint walk.

fn home_the_block_by_hand(n: usize, cursor: &RoundRobinCounter) -> LocaleId {
    // Should be `placement.plan_homes(1, &view)` — an ad-hoc cursor
    // bypasses the membership view and the replica planner.
    let home = cursor.take();
    home.next_round_robin(n)
}
