// Lint fixture (rule 9): a raw `CommLayer::record_*` call outside
// `crates/runtime/`. The fixture lives under a `crates/collections/`
// path inside the fixtures tree so rule 9's path scoping matches, while
// the `fixtures` directory itself is skipped by the normal lint walk.

fn bypass_the_transport_facade(cluster: &Cluster, from: LocaleId, to: LocaleId) {
    // Should be `cluster.send_to(to, CommMessage::Get { bytes: 8 })`.
    let _ = cluster.comm().record_get(from, to, 8);
}
