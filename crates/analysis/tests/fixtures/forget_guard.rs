//! Lint fixture: rule 7 (`forget-guard`). A read guard leaked with
//! `mem::forget` never ends its critical section, so the reclamation
//! backlog behind it grows forever. Not compiled — exercised by the
//! lint CLI tests via an explicit path argument.

fn leak_a_guard(domain: &HazardDomain) {
    let guard = domain.read_lock();
    std::mem::forget(guard);
}
