//! Lint fixture: an unannotated `unsafe` block. Excluded from the
//! normal walk (directories named `fixtures` are skipped); the
//! exit-code test points the lint binary at this file directly and
//! expects a non-zero exit.

pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
