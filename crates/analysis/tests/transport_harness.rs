//! Deterministic-checker harnesses for the mesh transport's
//! send/dispatch protocol (DESIGN.md §14), under exhaustive
//! (`Policy::Dpor`) exploration.
//!
//! `MeshTransport` runs on real threads behind the parking_lot facade,
//! so the harness models its two load-bearing invariants in
//! checker-visible primitives, exactly as the service harness models
//! the ticket protocol:
//!
//! 1. **At-most-once delivery.** The inbox pop must be one atomic
//!    check-and-remove under the inbox lock. The mutation splits it
//!    into peek-then-pop; two dispatchers then both observe the same
//!    frame and both deliver it — a `CheckedCell` write/write race DPOR
//!    finds, serializes, and replays.
//! 2. **At-most-once ack completion.** `Ack::complete` checks-and-sets
//!    a done flag under the same lock as the result write, so a
//!    dispatcher's success and a shutdown path's error can race without
//!    colliding. The mutation drops the guard; the two completions are
//!    a write/write race (the loser silently overwrites — a *lost*
//!    completion the sender can never observe).
//!
//! The real protocol — sequenced enqueue, atomic pop, guarded ack — is
//! explored clean over the same race surface.

#![cfg(feature = "check")]

use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_analysis::sync::Mutex;
use rcuarray_analysis::{thread, CheckedCell, Checker, Config, Policy, RaceKind};
use std::sync::Arc;

fn dpor_config(budget: usize) -> Config {
    Config {
        policy: Policy::Dpor,
        iterations: budget,
        ..Config::default()
    }
}

/// An ack modeled after `mesh::Ack`: result write and done flag under
/// one lock, so completion is at-most-once by construction.
struct GuardedAck {
    state: Mutex<(bool, u64)>,
    completions: AtomicUsize,
}

impl GuardedAck {
    fn new() -> Self {
        GuardedAck {
            state: Mutex::new((false, 0)),
            completions: AtomicUsize::new(0),
        }
    }

    fn complete(&self, result: u64) -> bool {
        let mut st = self.state.lock();
        if st.0 {
            return false;
        }
        *st = (true, result);
        self.completions.fetch_add(1, Ordering::SeqCst);
        true
    }
}

const ACK_OK: u64 = 1;
const ACK_ERR: u64 = 2;

/// The real protocol shape: a sender assigns send seqs and enqueues
/// under the inbox lock; a dispatcher pops atomically, records delivery
/// and completes the guarded ack. Under every explored interleaving the
/// link stays FIFO and every frame is delivered and acked exactly once.
#[test]
fn mesh_send_dispatch_handshake_is_clean_under_dpor() {
    let report = Checker::new(dpor_config(512)).run(|| {
        let inbox = Arc::new(Mutex::new((0u64, Vec::<u64>::new())));
        let delivered = Arc::new(Mutex::new(Vec::<u64>::new()));
        let acks = Arc::new([GuardedAck::new(), GuardedAck::new()]);

        let sender = {
            let inbox = Arc::clone(&inbox);
            thread::spawn(move || {
                for _ in 0..2 {
                    // Seq assignment and enqueue are one critical
                    // section — the source of per-link FIFO.
                    let mut ib = inbox.lock();
                    let seq = ib.0;
                    ib.0 += 1;
                    ib.1.push(seq);
                }
            })
        };
        let dispatcher = {
            let inbox = Arc::clone(&inbox);
            let delivered = Arc::clone(&delivered);
            let acks = Arc::clone(&acks);
            thread::spawn(move || {
                // Bounded drain pass racing the sender; the checker
                // needs loops with a schedule-independent bound.
                for _ in 0..2 {
                    let popped = {
                        let mut ib = inbox.lock();
                        if ib.1.is_empty() {
                            None
                        } else {
                            Some(ib.1.remove(0))
                        }
                    };
                    if let Some(seq) = popped {
                        delivered.lock().push(seq);
                        assert!(acks[seq as usize].complete(ACK_OK));
                    }
                    thread::yield_now();
                }
            })
        };

        sender.join().expect("sender");
        dispatcher.join().expect("dispatcher");
        // Final sweep after the sender quiesced (the drop-path drain).
        loop {
            let popped = {
                let mut ib = inbox.lock();
                if ib.1.is_empty() {
                    None
                } else {
                    Some(ib.1.remove(0))
                }
            };
            match popped {
                Some(seq) => {
                    delivered.lock().push(seq);
                    assert!(acks[seq as usize].complete(ACK_OK));
                }
                None => break,
            }
        }

        let log = delivered.lock().clone();
        assert_eq!(log, vec![0, 1], "per-link delivery must stay FIFO");
        for (i, ack) in acks.iter().enumerate() {
            assert_eq!(
                ack.completions.load(Ordering::SeqCst),
                1,
                "frame {i} must be acked exactly once"
            );
        }
    });
    assert!(report.is_clean(), "handshake must be race-free: {report}");
    assert!(
        report.iterations > 1,
        "DPOR explored more than one schedule"
    );
}

/// The double-delivery mutation: pop split into peek (one lock) and
/// remove (another lock). Two dispatchers can both peek frame 0 before
/// either removes it, and both deliver — a write/write race on the
/// frame's delivery cell that DPOR catches and replays.
#[test]
fn unguarded_double_delivery_caught_and_replays() {
    let scenario = || {
        let inbox = Arc::new(Mutex::new(vec![0usize]));
        let delivery = Arc::new(CheckedCell::new(0u64));

        let dispatch = |tag: u64| {
            let inbox = Arc::clone(&inbox);
            let delivery = Arc::clone(&delivery);
            thread::spawn(move || {
                // BUG under test: the peek and the remove are separate
                // critical sections, so the frame is observed twice.
                // (Delivery itself is outside the inbox lock, as in the
                // real dispatcher.)
                let peeked = inbox.lock().first().copied();
                if let Some(frame) = peeked {
                    assert_eq!(frame, 0);
                    {
                        let mut ib = inbox.lock();
                        if !ib.is_empty() {
                            ib.remove(0);
                        }
                    }
                    delivery.write(tag);
                }
            })
        };
        let d1 = dispatch(1);
        let d2 = dispatch(2);
        let _ = d1.join();
        let _ = d2.join();
    };

    for round in 0..2 {
        let report = Checker::new(dpor_config(64)).run(scenario);
        assert!(
            !report.races.is_empty(),
            "round {round}: double delivery not caught: {report}"
        );
        let race = report.races[0].clone();
        assert_eq!(race.kind, RaceKind::WriteWrite, "round {round}: {race}");
        let schedule = race
            .schedule
            .clone()
            .expect("DPOR races carry a serialized counterexample schedule");

        let replay = Checker::replay(schedule.as_str(), &Config::default(), scenario);
        assert!(
            !replay.races.is_empty(),
            "round {round}: schedule {schedule:?} did not reproduce the double delivery"
        );
        assert_eq!(replay.races[0].kind, RaceKind::WriteWrite);
    }
}

/// The lost-completion mutation: the ack is a bare cell with no done
/// guard, so the dispatcher's success races the shutdown path's
/// `LocaleDown` error and one completion silently overwrites the other.
/// DPOR catches the write/write collision and the schedule replays.
#[test]
fn unguarded_ack_completion_race_caught_and_replays() {
    let scenario = || {
        let ack = Arc::new(CheckedCell::new(0u64));
        let dispatcher = {
            let ack = Arc::clone(&ack);
            thread::spawn(move || ack.write(ACK_OK))
        };
        let shutdown = {
            let ack = Arc::clone(&ack);
            thread::spawn(move || ack.write(ACK_ERR))
        };
        let _ = dispatcher.join();
        let _ = shutdown.join();
    };

    for round in 0..2 {
        let report = Checker::new(dpor_config(64)).run(scenario);
        assert!(
            !report.races.is_empty(),
            "round {round}: lost completion not caught: {report}"
        );
        let race = report.races[0].clone();
        assert_eq!(race.kind, RaceKind::WriteWrite, "round {round}: {race}");
        let schedule = race
            .schedule
            .clone()
            .expect("DPOR races carry a serialized counterexample schedule");
        let replay = Checker::replay(schedule.as_str(), &Config::default(), scenario);
        assert!(!replay.races.is_empty(), "round {round}: replay failed");
    }
}

/// The guarded ack over the identical race surface: dispatcher success
/// vs shutdown error, exactly one wins, nothing is lost, and the
/// explored schedules are clean.
#[test]
fn guarded_ack_completes_exactly_once_under_dpor() {
    let report = Checker::new(dpor_config(256)).run(|| {
        let ack = Arc::new(GuardedAck::new());
        let dispatcher = {
            let ack = Arc::clone(&ack);
            thread::spawn(move || ack.complete(ACK_OK))
        };
        let shutdown = {
            let ack = Arc::clone(&ack);
            thread::spawn(move || ack.complete(ACK_ERR))
        };
        let ok_won = dispatcher.join().expect("dispatcher");
        let err_won = shutdown.join().expect("shutdown");

        assert!(ok_won ^ err_won, "exactly one completion must win");
        assert_eq!(ack.completions.load(Ordering::SeqCst), 1);
        let st = ack.state.lock();
        assert!(st.0, "the ack ends completed");
        assert!(st.1 == ACK_OK || st.1 == ACK_ERR);
    });
    assert!(report.is_clean(), "guarded ack must be race-free: {report}");
}
