//! Deterministic-checker harnesses for the serving layer.
//!
//! Two properties, each under exhaustive (`Policy::Dpor`) exploration:
//!
//! 1. **Admission conservation.** Producers racing a draining worker
//!    through the service's real `BoundedQueue` never lose or duplicate
//!    a request: every push is either accepted (and later drained) or
//!    refused, under every interleaving.
//! 2. **Shed-vs-flush completion is at-most-once.** A shedder dropping
//!    an expired request races the worker flushing the same request's
//!    batch. Without the ticket's at-most-once guard the two completions
//!    collide — modeled as a `CheckedCell` double-write, DPOR finds the
//!    write/write race on *every* run, serializes a counterexample
//!    schedule, and that schedule replays. With the guard (the
//!    `TicketSlot::complete` protocol: a `done` flag checked and set
//!    under the same lock as the response write), the identical
//!    race surface is clean.

#![cfg(feature = "check")]

use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_analysis::sync::Mutex;
use rcuarray_analysis::{thread, CheckedCell, Checker, Config, Policy, RaceKind};
use rcuarray_service::BoundedQueue;
use std::sync::Arc;

fn dpor_config(budget: usize) -> Config {
    Config {
        policy: Policy::Dpor,
        iterations: budget,
        ..Config::default()
    }
}

/// Producer pushes through a capacity-1 queue while a worker drains:
/// accepted + refused == pushed and drained == accepted, under every
/// explored interleaving; no access is racy.
#[test]
fn queue_admission_conserves_requests_under_dpor() {
    let report = Checker::new(dpor_config(512)).run(|| {
        let q = Arc::new(BoundedQueue::<u64>::with_capacity(1));
        let accepted = Arc::new(AtomicUsize::new(0));
        let refused = Arc::new(AtomicUsize::new(0));

        let producer = {
            let q = Arc::clone(&q);
            let accepted = Arc::clone(&accepted);
            let refused = Arc::clone(&refused);
            thread::spawn(move || {
                for i in 0..2u64 {
                    match q.try_push(i) {
                        Ok(()) => accepted.fetch_add(1, Ordering::SeqCst),
                        Err(_) => refused.fetch_add(1, Ordering::SeqCst),
                    };
                }
            })
        };
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut drained = 0usize;
                // One bounded drain pass racing the producer, then a
                // final sweep after it quiesces — the checker needs
                // loops with a schedule-independent bound.
                for _ in 0..2 {
                    if q.try_pop().is_some() {
                        drained += 1;
                    }
                    thread::yield_now();
                }
                drained
            })
        };

        producer.join().expect("producer");
        let mut drained = worker.join().expect("worker");
        while q.try_pop().is_some() {
            drained += 1;
        }

        let accepted = accepted.load(Ordering::SeqCst);
        let refused = refused.load(Ordering::SeqCst);
        assert_eq!(accepted + refused, 2, "every push is accepted xor refused");
        assert_eq!(drained, accepted, "every accepted request is drained");
    });
    assert!(report.is_clean(), "admission must be race-free: {report}");
    assert!(
        report.iterations > 1,
        "DPOR explored more than one schedule"
    );
}

/// The response slot both racers target. `resp` is the client-visible
/// payload; a double completion is a write/write race on it.
struct BuggySlot {
    resp: CheckedCell<u64>,
}

const SHED: u64 = 1;
const DONE: u64 = 2;

/// The mutation: shed and flush complete the same ticket with no
/// at-most-once guard. DPOR must find the double-completion on every
/// run, hand back a serialized schedule, and the schedule must replay.
#[test]
fn unguarded_shed_vs_flush_double_completion_caught_and_replays() {
    let scenario = || {
        let slot = Arc::new(BuggySlot {
            resp: CheckedCell::new(0),
        });
        let shedder = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || slot.resp.write(SHED))
        };
        let flusher = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || slot.resp.write(DONE))
        };
        let _ = shedder.join();
        let _ = flusher.join();
    };

    for round in 0..2 {
        let report = Checker::new(dpor_config(64)).run(scenario);
        assert!(
            !report.races.is_empty(),
            "round {round}: double completion not caught: {report}"
        );
        let race = report.races[0].clone();
        assert_eq!(race.kind, RaceKind::WriteWrite, "round {round}: {race}");
        let schedule = race
            .schedule
            .clone()
            .expect("DPOR races carry a serialized counterexample schedule");

        let replay = Checker::replay(schedule.as_str(), &Config::default(), scenario);
        assert!(
            !replay.races.is_empty(),
            "round {round}: schedule {schedule:?} did not reproduce the double completion"
        );
        assert_eq!(replay.races[0].kind, RaceKind::WriteWrite);
    }
}

/// The fix, mirroring `TicketSlot::complete`: the response write and the
/// `done` check-and-set happen under one lock, so the loser of the race
/// observes `done` and drops its response. Same racers, clean report.
#[test]
fn guarded_shed_vs_flush_completes_exactly_once() {
    struct GuardedSlot {
        state: Mutex<(bool, u64)>,
        completions: AtomicUsize,
    }
    impl GuardedSlot {
        fn complete(&self, resp: u64) -> bool {
            let mut st = self.state.lock();
            if st.0 {
                return false;
            }
            *st = (true, resp);
            self.completions.fetch_add(1, Ordering::SeqCst);
            true
        }
    }

    let report = Checker::new(dpor_config(256)).run(|| {
        let slot = Arc::new(GuardedSlot {
            state: Mutex::new((false, 0)),
            completions: AtomicUsize::new(0),
        });
        let shedder = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || slot.complete(SHED))
        };
        let flusher = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || slot.complete(DONE))
        };
        let shed_won = shedder.join().expect("shedder");
        let flush_won = flusher.join().expect("flusher");

        assert!(shed_won ^ flush_won, "exactly one completion must win");
        assert_eq!(slot.completions.load(Ordering::SeqCst), 1);
        let st = slot.state.lock();
        assert!(st.0, "the ticket ends completed");
        assert!(st.1 == SHED || st.1 == DONE);
    });
    assert!(
        report.is_clean(),
        "guarded completion must be race-free: {report}"
    );
}
