//! The obs sharded-counter and histogram cores under the checker.
//!
//! The telemetry subsystem promises that concurrent `add`/`record` calls
//! from arbitrary threads are race-free and lose no increments: shards
//! are independent relaxed atomics and `value()`/`snapshot()` only ever
//! sum them. The checker drives real concurrent updates through the
//! instrumented atomics and verifies both the absence of data races and
//! the exact final totals on every explored schedule.

#![cfg(feature = "check")]

use rcuarray_analysis::{thread, Checker, Config};
use rcuarray_obs::{Counter, Histogram};
use std::sync::Arc;

#[test]
fn concurrent_counter_adds_are_exact_and_race_free() {
    let report = Checker::new(Config {
        base_seed: 0x0b5_c0de,
        iterations: 24,
        ..Config::default()
    })
    .run(|| {
        let counter = Arc::new(Counter::new());
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    for i in 0..8u64 {
                        c.add(t * 100 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // sum(0..8) + sum(100..108) = 28 + 828.
        assert_eq!(counter.value(), 856, "increments lost");
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
}

#[test]
fn concurrent_histogram_records_preserve_count_and_sum() {
    let report = Checker::new(Config {
        base_seed: 0x0b5_c0df,
        iterations: 16,
        ..Config::default()
    })
    .run(|| {
        let hist = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let h = Arc::clone(&hist);
                thread::spawn(move || {
                    for i in 0..6u64 {
                        // Distinct magnitudes per thread: exercises
                        // different buckets concurrently.
                        h.record((1 << (4 * t)) + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 12, "recordings lost");
        // sum(1..=6) + sum(16..=21) = 21 + 111.
        assert_eq!(snap.sum, 132);
        let bucketed: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucketed, 12, "bucket occupancy must match count");
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
}

#[test]
fn reader_sums_race_free_against_writers() {
    let report = Checker::new(Config {
        base_seed: 0x0b5_c0e0,
        iterations: 16,
        ..Config::default()
    })
    .run(|| {
        let counter = Arc::new(Counter::new());
        let c = Arc::clone(&counter);
        let writer = thread::spawn(move || {
            for _ in 0..6 {
                c.add(1);
            }
        });
        // A concurrent reader may see any prefix of the adds, but never
        // tears and never races.
        let v = counter.value();
        assert!(v <= 6, "sum overshot: {v}");
        writer.join().unwrap();
        assert_eq!(counter.value(), 6);
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
}
