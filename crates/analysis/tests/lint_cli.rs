//! Exit-code contract of the `lint` binary: clean on the real repo,
//! non-zero on a fixture with a missing `// SAFETY:` comment.

use std::path::PathBuf;
use std::process::Command;

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lint"))
}

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn repo_is_lint_clean() {
    // No args: the binary resolves the workspace root itself.
    let out = lint_bin().output().expect("run lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "lint must exit 0 on the repo; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("files clean"),
        "unexpected output: {stderr}"
    );
}

#[test]
fn missing_safety_fixture_fails() {
    let fixture = crate_dir().join("tests/fixtures/missing_safety.rs");
    assert!(fixture.exists(), "fixture missing at {}", fixture.display());
    let out = lint_bin().arg(&fixture).output().expect("run lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "lint must fail on the fixture; stderr:\n{stderr}"
    );
    assert_eq!(out.status.code(), Some(1), "violations exit with code 1");
    assert!(
        stderr.contains("SAFETY"),
        "diagnostic should name the missing SAFETY comment: {stderr}"
    );
}

#[test]
fn forget_guard_fixture_fails() {
    let fixture = crate_dir().join("tests/fixtures/forget_guard.rs");
    assert!(fixture.exists(), "fixture missing at {}", fixture.display());
    let out = lint_bin().arg(&fixture).output().expect("run lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "lint must fail on the fixture; stderr:\n{stderr}"
    );
    assert_eq!(out.status.code(), Some(1), "violations exit with code 1");
    assert!(
        stderr.contains("forget-guard"),
        "diagnostic should name the forget-guard rule: {stderr}"
    );
}

#[test]
fn unbounded_queue_fixture_fails() {
    // The fixture sits under a crates/service/ subpath so rule 8's path
    // scoping applies to it when linted directly.
    let fixture = crate_dir().join("tests/fixtures/crates/service/unbounded_queue.rs");
    assert!(fixture.exists(), "fixture missing at {}", fixture.display());
    let out = lint_bin().arg(&fixture).output().expect("run lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "lint must fail on the fixture; stderr:\n{stderr}"
    );
    assert_eq!(out.status.code(), Some(1), "violations exit with code 1");
    assert!(
        stderr.contains("unbounded-queue"),
        "diagnostic should name the unbounded-queue rule: {stderr}"
    );
}

#[test]
fn raw_comm_fixture_fails() {
    // The fixture sits under a crates/collections/ subpath so rule 9's
    // outside-the-runtime scoping applies to it when linted directly.
    let fixture = crate_dir().join("tests/fixtures/crates/collections/raw_comm.rs");
    assert!(fixture.exists(), "fixture missing at {}", fixture.display());
    let out = lint_bin().arg(&fixture).output().expect("run lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "lint must fail on the fixture; stderr:\n{stderr}"
    );
    assert_eq!(out.status.code(), Some(1), "violations exit with code 1");
    assert!(
        stderr.contains("raw-comm"),
        "diagnostic should name the raw-comm rule: {stderr}"
    );
}

#[test]
fn raw_placement_fixture_fails() {
    // The fixture sits under a crates/rcuarray/ subpath (and outside
    // src/placement.rs) so rule 10's path scoping applies to it when
    // linted directly.
    let fixture = crate_dir().join("tests/fixtures/crates/rcuarray/raw_placement.rs");
    assert!(fixture.exists(), "fixture missing at {}", fixture.display());
    let out = lint_bin().arg(&fixture).output().expect("run lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "lint must fail on the fixture; stderr:\n{stderr}"
    );
    assert_eq!(out.status.code(), Some(1), "violations exit with code 1");
    assert!(
        stderr.contains("raw-placement"),
        "diagnostic should name the raw-placement rule: {stderr}"
    );
}

#[test]
fn fixtures_are_skipped_by_the_directory_walk() {
    // Pointing the binary at the tests/ directory (which contains the
    // fixtures dir) must stay clean: fixtures are excluded from walks.
    let out = lint_bin()
        .arg(crate_dir().join("tests"))
        .output()
        .expect("run lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "tests/ walk must skip fixtures; stderr:\n{stderr}"
    );
}
