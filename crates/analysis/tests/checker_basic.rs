//! Core checker validation: the vector-clock engine must catch a textbook
//! unsynchronized access on every schedule, stay quiet for properly
//! synchronized code, reproduce races from their recorded seed, and
//! detect deadlocks.

#![cfg(feature = "check")]

use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_analysis::{thread, CheckedCell, Checker, Config, Mutex, Policy, RaceKind};
use std::sync::Arc;

#[test]
fn textbook_write_write_race_detected_every_schedule() {
    let cfg = Config {
        iterations: 16,
        ..Config::default()
    };
    let report = Checker::new(cfg).run(|| {
        let cell = Arc::new(CheckedCell::new(0u64));
        let c2 = cell.clone();
        let t = thread::spawn(move || c2.write(1));
        cell.write(2);
        let _ = t.join();
    });
    // A write/write race with no synchronization whatsoever must be
    // caught on every single schedule, not just the lucky ones.
    assert_eq!(report.iterations, 16);
    assert!(report.races.len() >= 16, "races: {}", report.races.len());
    let race = report.first_race().expect("at least one race");
    assert_eq!(race.kind, RaceKind::WriteWrite);
    // Both access labels carry real source sites.
    assert!(race.first.site.contains("checker_basic.rs"));
    assert!(race.second.site.contains("checker_basic.rs"));
}

#[test]
fn textbook_race_detected_under_pct_too() {
    let cfg = Config {
        iterations: 8,
        policy: Policy::Pct { depth: 3 },
        ..Config::default()
    };
    let report = Checker::new(cfg).run(|| {
        let cell = Arc::new(CheckedCell::new(0u64));
        let c2 = cell.clone();
        let t = thread::spawn(move || c2.write(1));
        cell.write(2);
        let _ = t.join();
    });
    assert!(!report.is_clean());
}

#[test]
fn race_reproduces_from_recorded_seed() {
    let scenario = || {
        let cell = Arc::new(CheckedCell::new(0u64));
        let c2 = cell.clone();
        let t = thread::spawn(move || c2.write(1));
        cell.write(2);
        let _ = t.join();
    };
    let report = Checker::new(Config {
        iterations: 4,
        ..Config::default()
    })
    .run(scenario);
    let race = report.first_race().expect("race").clone();
    // Replaying the exact seed must reproduce a race deterministically.
    let replay = Checker::replay(race.seed, &Config::default(), scenario);
    assert!(
        !replay.is_clean(),
        "seed {:#x} did not reproduce",
        race.seed
    );
    let again = replay.first_race().unwrap();
    assert_eq!(again.seed, race.seed);
    assert_eq!(again.kind, race.kind);
}

#[test]
fn mutex_synchronized_writes_are_clean() {
    let cfg = Config {
        iterations: 24,
        ..Config::default()
    };
    let report = Checker::new(cfg).run(|| {
        let cell = Arc::new((Mutex::new(()), CheckedCell::new(0u64)));
        let c2 = cell.clone();
        let t = thread::spawn(move || {
            let _g = c2.0.lock();
            c2.1.write(c2.1.read() + 1);
        });
        {
            let _g = cell.0.lock();
            cell.1.write(cell.1.read() + 1);
        }
        t.join().unwrap();
        assert_eq!(cell.1.read(), 2);
    });
    assert!(report.is_clean(), "{report}");
}

#[test]
fn mutex_synchronized_writes_clean_under_pct() {
    let cfg = Config {
        iterations: 24,
        policy: Policy::Pct { depth: 3 },
        ..Config::default()
    };
    let report = Checker::new(cfg).run(|| {
        let cell = Arc::new((Mutex::new(()), CheckedCell::new(0u64)));
        let c2 = cell.clone();
        let t = thread::spawn(move || {
            let _g = c2.0.lock();
            c2.1.write(c2.1.read() + 1);
        });
        {
            let _g = cell.0.lock();
            cell.1.write(cell.1.read() + 1);
        }
        t.join().unwrap();
    });
    assert!(report.is_clean(), "{report}");
}

#[test]
fn release_acquire_message_passing_is_clean() {
    let cfg = Config {
        iterations: 24,
        ..Config::default()
    };
    let report = Checker::new(cfg).run(|| {
        let shared = Arc::new((AtomicUsize::new(0), CheckedCell::new(0u64)));
        let s2 = shared.clone();
        let t = thread::spawn(move || {
            s2.1.write(7);
            s2.0.store(1, Ordering::Release);
        });
        while shared.0.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        assert_eq!(shared.1.read(), 7);
        t.join().unwrap();
    });
    assert!(report.is_clean(), "{report}");
}

#[test]
fn relaxed_message_passing_races() {
    let cfg = Config {
        iterations: 24,
        ..Config::default()
    };
    let report = Checker::new(cfg).run(|| {
        let shared = Arc::new((AtomicUsize::new(0), CheckedCell::new(0u64)));
        let s2 = shared.clone();
        let t = thread::spawn(move || {
            s2.1.write(7);
            // Mutation: the publication store is relaxed, so the flag no
            // longer carries the payload write into the reader.
            s2.0.store(1, Ordering::Relaxed);
        });
        while shared.0.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        let _ = shared.1.read();
        t.join().unwrap();
    });
    assert!(!report.is_clean());
    let race = report.first_race().unwrap();
    assert_eq!(race.kind, RaceKind::WriteRead);
}

#[test]
fn abba_lock_order_deadlock_detected() {
    let cfg = Config {
        iterations: 32,
        ..Config::default()
    };
    let report = Checker::new(cfg).run(|| {
        let locks = Arc::new((Mutex::new(()), Mutex::new(())));
        let l2 = locks.clone();
        let t = thread::spawn(move || {
            let _a = l2.0.lock();
            let _b = l2.1.lock();
        });
        let _b = locks.1.lock();
        let _a = locks.0.lock();
        drop((_a, _b));
        let _ = t.join();
    });
    // Some schedule out of 32 must interleave the acquisitions.
    assert!(
        !report.deadlocks.is_empty(),
        "no deadlock found in {} iterations",
        report.iterations
    );
    assert!(report.races.is_empty(), "{report}");
}

#[test]
fn harness_panics_propagate_with_their_payload() {
    let result = std::panic::catch_unwind(|| {
        Checker::new(Config {
            iterations: 1,
            ..Config::default()
        })
        .run(|| panic!("boom from scenario"));
    });
    let payload = result.expect_err("panic must propagate");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("boom from scenario"), "payload: {msg:?}");
}
