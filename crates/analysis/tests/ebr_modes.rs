//! Ordering-mode mutation tests against the *real* EBR zone
//! (`rcuarray_ebr::EpochZone`), exercised through the instrumented facade.
//!
//! The scenario is the paper's read-side protocol verbatim: a reader pins,
//! loads the published slot index, reads the slot, and unpins; the writer
//! publishes a new slot, runs advance + wait-for-readers (Algorithm 1's
//! writer barrier), then reuses the retired slot. Soundness claim under
//! test: the barrier must order every pinned reader's slot access before
//! the writer's reuse write.
//!
//! - `OrderingMode::Relaxed` (the measurement-only unsound mode) must
//!   produce a detected race with a reproducing seed;
//! - `SeqCst` (the paper's configuration) and `AcqRelFence` must come out
//!   clean across a bounded-exploration sweep.

#![cfg(feature = "check")]

use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_analysis::{thread, CheckedCell, Checker, Config, Policy};
use rcuarray_ebr::{EpochZone, OrderingMode};
use std::sync::Arc;

struct Shared {
    zone: EpochZone,
    /// Two payload slots; the active one is published via `cur`.
    slots: [CheckedCell<u64>; 2],
    cur: AtomicUsize,
}

/// The read-vs-reclaim scenario for one ordering mode.
fn scenario(mode: OrderingMode) -> impl Fn() + Send + Sync + 'static {
    move || {
        let sh = Arc::new(Shared {
            zone: EpochZone::with_mode(mode),
            slots: [CheckedCell::new(1), CheckedCell::new(2)],
            cur: AtomicUsize::new(0),
        });

        let r = sh.clone();
        let reader = thread::spawn(move || {
            let ticket = r.zone.pin();
            let idx = r.cur.load(Ordering::Acquire);
            let v = r.slots[idx].read();
            assert!(v == 1 || v == 2, "torn or reused value: {v}");
            r.zone.unpin(ticket);
        });

        // Writer (the root thread): publish slot 1, then retire slot 0.
        sh.slots[1].write(2);
        sh.cur.store(1, Ordering::Release);
        let old = sh.zone.advance();
        sh.zone.wait_for_readers(old);
        // Reuse of the retired slot. Safe iff the barrier ordered every
        // reader of slot 0 before this write.
        sh.slots[0].write(0xDEAD);

        let _ = reader.join();
    }
}

fn sweep(mode: OrderingMode) -> rcuarray_analysis::Report {
    Checker::new(Config {
        base_seed: 0x5eed_eb20,
        iterations: 48,
        ..Config::default()
    })
    .run(scenario(mode))
}

#[test]
fn relaxed_mode_races_with_reproducing_seed() {
    let report = sweep(OrderingMode::Relaxed);
    assert!(
        !report.is_clean(),
        "the unsound Relaxed mode must be caught within the sweep"
    );
    let race = report.first_race().unwrap().clone();
    // The race is on the retired slot: reader's plain read vs the
    // writer's reuse write, both in this file.
    assert!(race.first.site.contains("ebr_modes.rs"), "{race}");
    assert!(race.second.site.contains("ebr_modes.rs"), "{race}");

    // The recorded seed replays the exact interleaving.
    let replay = Checker::replay(
        race.seed,
        &Config::default(),
        scenario(OrderingMode::Relaxed),
    );
    assert!(
        !replay.is_clean(),
        "seed {:#x} did not reproduce",
        race.seed
    );
}

/// The read-vs-reclaim scenario with the *reader* protocol on the root
/// thread and the writer spawned. Same mutation surface as
/// [`scenario`], but oriented so the racy interleaving (reader pinned
/// and reading the old slot before the writer publishes) sits shallow
/// in the DPOR exploration tree: the zone's pin-retry and barrier spin
/// loops make deep subtrees combinatorially large, and depth-first
/// exploration must drain a subtree before backtracking above it.
/// Bounded harnesses meant for exhaustive modes are oriented so the
/// property under test does not hide behind a spin subtree.
fn reader_rooted(mode: OrderingMode) -> impl Fn() + Send + Sync + 'static {
    move || {
        let sh = Arc::new(Shared {
            zone: EpochZone::with_mode(mode),
            slots: [CheckedCell::new(1), CheckedCell::new(2)],
            cur: AtomicUsize::new(0),
        });

        let w = sh.clone();
        let writer = thread::spawn(move || {
            w.slots[1].write(2);
            w.cur.store(1, Ordering::Release);
            let old = w.zone.advance();
            w.zone.wait_for_readers(old);
            w.slots[0].write(0xDEAD);
        });

        let ticket = sh.zone.pin();
        let idx = sh.cur.load(Ordering::Acquire);
        let v = sh.slots[idx].read();
        assert!(v == 1 || v == 2, "torn or reused value: {v}");
        sh.zone.unpin(ticket);

        let _ = writer.join();
    }
}

/// The Relaxed-mode mutation under [`Policy::Dpor`]: the race must be
/// found on *every* run — systematic exploration, no seed sweep, no
/// luck — and the minimized counterexample schedule must replay. The
/// barrier spins (each extra probe is its own Mazurkiewicz trace), so
/// this asserts detection within the budget, not exhaustion.
#[test]
fn relaxed_mode_found_on_every_dpor_run() {
    for round in 0..2 {
        let report = Checker::new(Config {
            policy: Policy::Dpor,
            iterations: 64,
            ..Config::default()
        })
        .run(reader_rooted(OrderingMode::Relaxed));
        assert!(
            !report.is_clean(),
            "round {round}: Relaxed mode not caught by exhaustive exploration: {report}"
        );
        let race = report.first_race().unwrap().clone();
        let schedule = race
            .schedule
            .clone()
            .expect("DPOR counterexamples carry a schedule");
        let replay = Checker::replay(
            schedule.as_str(),
            &Config::default(),
            reader_rooted(OrderingMode::Relaxed),
        );
        assert!(
            !replay.is_clean(),
            "round {round}: schedule {schedule:?} did not reproduce"
        );
    }
}

/// The paper's SeqCst configuration under the same exploration budget:
/// no interleaving within the budget races.
#[test]
fn seqcst_mode_clean_under_dpor() {
    let report = Checker::new(Config {
        policy: Policy::Dpor,
        iterations: 64,
        ..Config::default()
    })
    .run(reader_rooted(OrderingMode::SeqCst));
    assert!(report.is_clean(), "{report}");
}

#[test]
fn seqcst_mode_is_clean() {
    let report = sweep(OrderingMode::SeqCst);
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty());
}

#[test]
fn acqrel_fence_mode_is_clean() {
    let report = sweep(OrderingMode::AcqRelFence);
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty());
}

/// Two concurrent readers against one writer, sound modes only: the
/// barrier must serialize reclamation against both.
#[test]
fn two_readers_sound_modes_clean() {
    for mode in [OrderingMode::SeqCst, OrderingMode::AcqRelFence] {
        let report = Checker::new(Config {
            base_seed: 0x5eed_eb21,
            iterations: 24,
            ..Config::default()
        })
        .run(move || {
            let sh = Arc::new(Shared {
                zone: EpochZone::with_mode(mode),
                slots: [CheckedCell::new(1), CheckedCell::new(2)],
                cur: AtomicUsize::new(0),
            });
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let r = sh.clone();
                    thread::spawn(move || {
                        let ticket = r.zone.pin();
                        let idx = r.cur.load(Ordering::Acquire);
                        let _ = r.slots[idx].read();
                        r.zone.unpin(ticket);
                    })
                })
                .collect();
            sh.slots[1].write(2);
            sh.cur.store(1, Ordering::Release);
            let old = sh.zone.advance();
            sh.zone.wait_for_readers(old);
            sh.slots[0].write(0xDEAD);
            for h in handles {
                let _ = h.join();
            }
        });
        assert!(report.is_clean(), "mode {mode:?}: {report}");
    }
}
