//! Deterministic-checker harnesses for the availability layer
//! (DESIGN.md §15): failover reads racing a resize, replica writes
//! racing re-replication, and the acked-write hand-off racing failover
//! completion.
//!
//! The real protocol spans locales (`coforall_locales` runs on raw
//! scoped threads the checker cannot schedule), so — exactly as the
//! transport and service harnesses model the mesh handshake and the
//! ticket protocol — this harness models the placement map's three
//! load-bearing invariants in checker-visible primitives:
//!
//! 1. **Guarded placement.** Failover lookup, replica fan-out, and the
//!    resize append/rollback all hold the one placement lock
//!    (`PlacementMap::with_groups`), so a failover read never observes
//!    a half-built or rolled-back group.
//! 2. **Atomic copy-then-swap.** Repair copies the donor and installs
//!    the fresh replica in a single critical section; a replica write
//!    serialized behind it always lands in the *current* cell. The
//!    mutation splits copy from install — the stale copy overwrites a
//!    concurrently acked write, a write/write race DPOR finds,
//!    serializes, and replays.
//! 3. **At-most-once ack.** The primary-path and failover-path
//!    completions of one acked write share a done flag under one lock.
//!    The mutation drops the guard; the two completions collide on the
//!    ack cell — the lost-ack race, caught and replayed from its
//!    schedule.

#![cfg(feature = "check")]

use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_analysis::sync::Mutex;
use rcuarray_analysis::{thread, CheckedCell, Checker, Config, Policy, RaceKind};
use std::sync::Arc;

fn dpor_config(budget: usize) -> Config {
    Config {
        policy: Policy::Dpor,
        iterations: budget,
        ..Config::default()
    }
}

/// One replicated block: primary cell plus one replica cell (rf = 2).
type Group = (Arc<CheckedCell<u64>>, Arc<CheckedCell<u64>>);

fn group(v: u64) -> Group {
    (Arc::new(CheckedCell::new(v)), Arc::new(CheckedCell::new(v)))
}

/// Failover read fully concurrent with a resize that appends a group
/// and rolls it back. The reader's primary home is `Down`, so every
/// read takes the failover path: look up the replica and load it under
/// the placement lock. On every explored schedule the read returns the
/// pre- or post-write value — never garbage, never an entry of the
/// rolled-back group — and group 0 stays pinned (Lemma 6 on the
/// replica).
#[test]
fn failover_read_concurrent_with_resize_clean_under_dpor() {
    let report = Checker::new(dpor_config(256)).run(|| {
        let groups: Arc<Mutex<Vec<Group>>> = Arc::new(Mutex::new(vec![group(5)]));

        let reader = {
            let groups = Arc::clone(&groups);
            thread::spawn(move || {
                for _ in 0..2 {
                    // Failover: primary home is Down, serve from the
                    // replica. Lookup and load share the lock, as in
                    // `failover_target` + the fan-out stores.
                    let g = groups.lock();
                    assert!(!g.is_empty(), "group 0 is pinned, never truncated");
                    let v = g[0].1.read();
                    assert!(v == 5 || v == 9, "failover read saw garbage: {v}");
                }
            })
        };

        let resizer = {
            let groups = Arc::clone(&groups);
            thread::spawn(move || {
                // Resize: append the new group under the lock...
                groups.lock().push(group(0));
                // ...abort, and roll the placement map back with the
                // snapshots (`ResizeRollback` truncates to old_nblocks).
                groups.lock().truncate(1);
                // A replicated write through the surviving group: the
                // primary store and the replica fan-out share the lock.
                let g = groups.lock();
                g[0].0.write(9);
                g[0].1.write(9);
            })
        };

        reader.join().expect("reader");
        resizer.join().expect("resizer");
        let g = groups.lock();
        assert_eq!(g.len(), 1, "rollback must drop exactly the aborted group");
        assert_eq!(g[0].0.read(), 9);
        assert_eq!(g[0].1.read(), 9, "fan-out reached the replica");
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
    assert!(
        report.iterations > 1,
        "DPOR explored more than one schedule"
    );
}

/// A replica slot whose cell repair can swap out, as
/// `repair_group` swaps `group.entries[slot]`.
struct ReplicaSlot {
    cell: Arc<CheckedCell<u64>>,
}

/// Replica write concurrent with re-replication, guarded: repair's
/// donor copy and fresh-cell install are one critical section, so a
/// writer serialized behind it always stores into the *current*
/// replica. On every schedule the last acked write (8) survives — the
/// zero-lost-acked-writes contract of the chaos acceptance test.
#[test]
fn replica_write_concurrent_with_rereplication_clean_under_dpor() {
    let report = Checker::new(dpor_config(256)).run(|| {
        let slot = Arc::new(Mutex::new(ReplicaSlot {
            cell: Arc::new(CheckedCell::new(5)),
        }));

        let writer = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                for v in [7u64, 8] {
                    // Fan-out store under the placement lock; the ack
                    // is implied by the store landing.
                    slot.lock().cell.write(v);
                }
            })
        };
        let repair = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                // Re-replication: copy the donor and install the fresh
                // replica atomically w.r.t. fan-out stores.
                let mut s = slot.lock();
                let copied = s.cell.read();
                s.cell = Arc::new(CheckedCell::new(copied));
            })
        };

        writer.join().expect("writer");
        repair.join().expect("repair");
        assert_eq!(
            slot.lock().cell.read(),
            8,
            "an acked replica write vanished across repair"
        );
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
}

/// The lost-update mutation: repair copies the donor under the lock but
/// installs *outside* it, so a concurrently acked fan-out write races
/// the stale install on the same cell — a write/write collision DPOR
/// catches deterministically, serializes, and replays. (Semantically:
/// the stale copy overwrites the acked 8 — the exact bug the atomic
/// copy-then-swap exists to prevent.)
#[test]
fn unguarded_repair_overwrite_caught_and_replays() {
    let scenario = || {
        let cell = Arc::new(CheckedCell::new(5u64));
        let lock = Arc::new(Mutex::new(()));

        let writer = {
            let cell = Arc::clone(&cell);
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                let _g = lock.lock();
                cell.write(8);
            })
        };
        let repair = {
            let cell = Arc::clone(&cell);
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                // BUG under test: the donor copy is guarded, the
                // install is not — split critical sections.
                let copied = {
                    let _g = lock.lock();
                    cell.read()
                };
                cell.write(copied);
            })
        };
        let _ = writer.join();
        let _ = repair.join();
    };

    let report = Checker::new(dpor_config(128)).run(scenario);
    assert!(!report.races.is_empty(), "lost update not caught: {report}");
    let race = report.races[0].clone();
    assert_eq!(race.kind, RaceKind::WriteWrite, "{race}");
    let schedule = race
        .schedule
        .clone()
        .expect("DPOR races carry a serialized counterexample schedule");
    let replay = Checker::replay(schedule.as_str(), &Config::default(), scenario);
    assert!(
        !replay.races.is_empty(),
        "schedule {schedule:?} did not reproduce the lost update"
    );
    assert_eq!(replay.races[0].kind, RaceKind::WriteWrite);
}

/// An acked write completed at most once, modeled after the service
/// ticket slot: done flag and ack value under one lock, like
/// `replicated_store_chunk` deciding the ack home once under the
/// placement lock.
struct GuardedAck {
    state: Mutex<(bool, u64)>,
    completions: AtomicUsize,
}

impl GuardedAck {
    fn new() -> Self {
        GuardedAck {
            state: Mutex::new((false, 0)),
            completions: AtomicUsize::new(0),
        }
    }

    fn complete(&self, route: u64) -> bool {
        let mut st = self.state.lock();
        if st.0 {
            return false;
        }
        *st = (true, route);
        self.completions.fetch_add(1, Ordering::SeqCst);
        true
    }
}

const ROUTE_PRIMARY: u64 = 1;
const ROUTE_FAILOVER: u64 = 2;

/// The acked-write hand-off, guarded: mid-write the detector marks the
/// primary `Down`, so the primary path and the failover path both try
/// to complete the same ack. Under every explored schedule exactly one
/// wins — the writer observes exactly one acked route, never zero,
/// never two.
#[test]
fn acked_write_failover_handoff_clean_under_dpor() {
    let report = Checker::new(dpor_config(256)).run(|| {
        let ack = Arc::new(GuardedAck::new());
        let up = Arc::new(AtomicUsize::new(1)); // primary's up bit

        let primary = {
            let ack = Arc::clone(&ack);
            let up = Arc::clone(&up);
            thread::spawn(move || {
                // The primary path completes only while its home is
                // still in view — the `is_up` consult in
                // `replicated_store_chunk`.
                if up.load(Ordering::SeqCst) == 1 {
                    ack.complete(ROUTE_PRIMARY);
                }
            })
        };
        let detector_and_failover = {
            let ack = Arc::clone(&ack);
            let up = Arc::clone(&up);
            thread::spawn(move || {
                // Detector: two missed probes mark the primary Down...
                up.store(0, Ordering::SeqCst);
                // ...and the failover path re-acks through the replica.
                ack.complete(ROUTE_FAILOVER);
            })
        };

        primary.join().expect("primary");
        detector_and_failover.join().expect("failover");
        assert_eq!(
            ack.completions.load(Ordering::SeqCst),
            1,
            "an acked write must be acked exactly once"
        );
        let st = ack.state.lock();
        assert!(st.0, "the write was never acked");
        assert!(st.1 == ROUTE_PRIMARY || st.1 == ROUTE_FAILOVER);
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
}

/// The seeded lost-ack mutation: the ack is a bare cell with no done
/// guard, so the primary path's completion races the failover path's
/// and one silently overwrites the other — a lost ack the writer can
/// never observe. DPOR catches the write/write collision on the ack
/// cell and the serialized schedule replays it, seed-independently.
#[test]
fn unguarded_lost_ack_caught_and_replays() {
    let scenario = || {
        let ack = Arc::new(CheckedCell::new(0u64));

        let complete = |route: u64| {
            let ack = Arc::clone(&ack);
            thread::spawn(move || {
                // BUG under test: no done flag, no lock — both routes
                // write the ack cell directly.
                ack.write(route);
            })
        };
        let p = complete(ROUTE_PRIMARY);
        let f = complete(ROUTE_FAILOVER);
        let _ = p.join();
        let _ = f.join();
    };

    for round in 0..2 {
        let report = Checker::new(dpor_config(64)).run(scenario);
        assert!(
            !report.races.is_empty(),
            "round {round}: lost ack not caught: {report}"
        );
        let race = report.races[0].clone();
        assert_eq!(race.kind, RaceKind::WriteWrite, "round {round}: {race}");
        let schedule = race
            .schedule
            .clone()
            .expect("DPOR races carry a serialized counterexample schedule");
        let replay = Checker::replay(schedule.as_str(), &Config::default(), scenario);
        assert!(
            !replay.races.is_empty(),
            "round {round}: schedule {schedule:?} did not reproduce the lost ack"
        );
        assert_eq!(replay.races[0].kind, RaceKind::WriteWrite);
    }
}

/// The guarded protocols again under seeded random sampling — the same
/// seeds the nightly chaos loop sweeps — as a cheap wide net beside
/// DPOR's systematic one.
#[test]
fn guarded_availability_protocols_clean_under_seeded_sampling() {
    for seed in [0x5eed_a501u64, 0x5eed_a502, 0x5eed_a503] {
        let report = Checker::new(Config {
            base_seed: seed,
            iterations: 16,
            ..Config::default()
        })
        .run(|| {
            let slot = Arc::new(Mutex::new(ReplicaSlot {
                cell: Arc::new(CheckedCell::new(5)),
            }));
            let ack = Arc::new(GuardedAck::new());

            let writer = {
                let slot = Arc::clone(&slot);
                let ack = Arc::clone(&ack);
                thread::spawn(move || {
                    slot.lock().cell.write(8);
                    ack.complete(ROUTE_PRIMARY);
                })
            };
            let repair = {
                let slot = Arc::clone(&slot);
                let ack = Arc::clone(&ack);
                thread::spawn(move || {
                    let mut s = slot.lock();
                    let copied = s.cell.read();
                    s.cell = Arc::new(CheckedCell::new(copied));
                    drop(s);
                    ack.complete(ROUTE_FAILOVER);
                })
            };
            writer.join().expect("writer");
            repair.join().expect("repair");
            assert_eq!(slot.lock().cell.read(), 8);
            assert_eq!(ack.completions.load(Ordering::SeqCst), 1);
        });
        assert!(report.is_clean(), "seed {seed:#x}: {report}");
    }
}
