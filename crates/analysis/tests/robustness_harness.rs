//! The robust-reclamation transitions (DESIGN.md §9) under the
//! deterministic checker: quarantine of a stalled reader, and the
//! backpressure ladder (watermark → forced drain → hard cap → refusal →
//! blocking hand-over) with a reader gating the minimum.
//!
//! Both scenarios are scheduling-sensitive — quarantine races the
//! staller's last observe against the detector's scan, and backpressure
//! races retires against drains — so every interleaving the checker
//! explores must keep the protocol's promises: no premature free is ever
//! observable (a `CheckedCell` read-after-poison fails the run) and no
//! schedule deadlocks.

#![cfg(feature = "check")]

use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_analysis::{thread, CheckedCell, Checker, Config, Policy};
use rcuarray_qsbr::{PressureConfig, QsbrDomain, Reclaim, Retired, StallPolicy};
use std::sync::Arc;

/// The quarantine-ladder scenario shared by the sampled sweep and the
/// exhaustive-mode run.
fn quarantine_scenario() {
    let domain = Arc::new(QsbrDomain::new());
    domain.set_stall_policy(StallPolicy::after(1, 1));
    domain.register_current_thread();
    let payload = Arc::new(CheckedCell::new(7u64));
    let stage = Arc::new(AtomicUsize::new(0));

    let d = domain.clone();
    let p = payload.clone();
    let s = stage.clone();
    let staller = thread::spawn(move || {
        d.ensure_registered();
        // Read strictly before announcing the stall: a quarantined
        // reader's safety contract is that it holds no references
        // acquired before its last quiescent announcement.
        assert_eq!(p.read(), 7, "read after reclaim");
        s.store(1, Ordering::Release);
        // Stall: registered, never checkpointing, never parking.
        while s.load(Ordering::Acquire) == 1 {
            thread::yield_now();
        }
        // Leave the protocol explicitly (the checker's threads do
        // not run TLS destructors at join): the checkpoint rejoins
        // from quarantine, the park leaves the minimum scan.
        d.checkpoint();
        d.park();
    });
    while stage.load(Ordering::Acquire) == 0 {
        thread::yield_now();
    }

    // Retire the payload. The staller now lags the state epoch.
    let p2 = payload.clone();
    domain.defer(move || p2.write(0xDEAD));

    // Reclaiming checkpoints advance the robustness clock; once the
    // staller exhausts its patience it is force-parked and the free
    // runs without it. Bounded: this must NOT take a full schedule.
    let mut freed = 0;
    let mut calls = 0;
    while freed == 0 {
        freed = domain.checkpoint();
        calls += 1;
        assert!(calls < 64, "quarantine never unblocked reclamation");
    }
    assert_eq!(freed, 1);
    assert_eq!(payload.read(), 0xDEAD);
    assert_eq!(domain.num_quarantined(), 1, "staller must be quarantined");
    assert!(domain.stats().quarantines >= 1);

    // Release the staller; its rejoin checkpoint settles the
    // quarantine gauge back to baseline.
    stage.store(2, Ordering::Release);
    staller.join().unwrap();
    assert_eq!(domain.num_quarantined(), 0, "rejoin must clear quarantine");
}

/// A registered reader that stops checkpointing must be quarantined so
/// the owner's deferred reclamation proceeds without it — and the
/// staller's earlier payload read must still happen-before the poison on
/// every schedule (it held no references past its last observe).
#[test]
fn stalled_reader_is_quarantined_and_reclaim_proceeds() {
    let report = Checker::new(Config {
        base_seed: 0x5eed_9b01,
        iterations: 24,
        ..Config::default()
    })
    .run(quarantine_scenario);
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
}

/// The quarantine ladder under [`Policy::Dpor`]: the stall handshake
/// spins, so the budget bounds systematic exploration rather than
/// exhausting it; no explored schedule may leak a premature free.
#[test]
fn quarantine_ladder_clean_under_dpor() {
    let report = Checker::new(Config {
        policy: Policy::Dpor,
        iterations: 48,
        ..Config::default()
    })
    .run(quarantine_scenario);
    assert!(report.is_clean(), "{report}");
}

/// The backpressure ladder with a live reader gating the minimum: the
/// byte cap refuses `try_retire` while the reader is unquiesced, and the
/// blocking `retire_or_quiesce` hand-over completes exactly when the
/// reader quiesces — on every schedule, without deadlock.
#[test]
fn bounded_backlog_refuses_at_cap_and_drains_after_quiescence() {
    let report = Checker::new(Config {
        base_seed: 0x5eed_9b02,
        iterations: 24,
        ..Config::default()
    })
    .run(|| {
        let domain = Arc::new(QsbrDomain::new());
        domain.set_pressure(PressureConfig::bounded(1024));
        domain.register_current_thread();
        let stage = Arc::new(AtomicUsize::new(0));

        let d = domain.clone();
        let s = stage.clone();
        let reader = thread::spawn(move || {
            d.ensure_registered();
            s.store(1, Ordering::Release);
            // Hold the minimum back (registered, not quiescing) until
            // the owner has been refused at the cap.
            while s.load(Ordering::Acquire) == 1 {
                thread::yield_now();
            }
            // Park (a checkpoint plus leaving the minimum scan): the
            // quiescence promise that unblocks the owner. The checker's
            // threads run no TLS destructors at join, so the record must
            // step out of the scan explicitly.
            d.park();
        });
        while stage.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }

        // 256-byte retires against a 1024-byte cap: the watermark (512)
        // forces helping drains (dry — the reader gates the minimum),
        // then the cap refuses outright.
        let freed = Arc::new(AtomicUsize::new(0));
        let mut held_back = None;
        for _ in 0..16 {
            let f = freed.clone();
            let retired = Retired::with_hint(256, 0, move || {
                f.fetch_add(1, Ordering::AcqRel);
            });
            match domain.try_retire(retired) {
                Ok(()) => {}
                Err(bp) => {
                    assert_eq!(bp.max_backlog_bytes, 1024);
                    assert!(bp.pending_bytes >= 1024, "{bp}");
                    held_back = Some(bp.into_retired());
                    break;
                }
            }
        }
        let retired = held_back.expect("cap never refused under a gating reader");
        assert_eq!(freed.load(Ordering::Acquire), 0, "freed past the gate");

        // Release the reader, then hand the refused retirement over
        // through the blocking path: it must complete once the reader's
        // checkpoint lands (and the join guarantees it has).
        stage.store(2, Ordering::Release);
        reader.join().unwrap();
        domain.retire_or_quiesce(retired);
        let mut calls = 0;
        while domain.stats().pending > 0 {
            domain.checkpoint();
            calls += 1;
            assert!(calls < 64, "backlog never drained after quiescence");
        }
        assert!(freed.load(Ordering::Acquire) >= 1, "hand-over never ran");
        assert_eq!(domain.stats().pending_bytes, 0, "gauges back to baseline");
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
}
