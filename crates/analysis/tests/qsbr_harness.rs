//! The real QSBR defer/checkpoint drain under the checker.
//!
//! A reader thread reads a QSBR-protected payload and parks; the owner
//! defers a "free" (a poison write to the payload) and checkpoints until
//! it runs. Algorithm 2's guarantee under test: the deferred reclamation
//! runs only after every participant has quiesced, so the reader's
//! payload read must happen-before the poison write on every schedule.

#![cfg(feature = "check")]

use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_analysis::{thread, CheckedCell, Checker, Config, Policy};
use rcuarray_qsbr::QsbrDomain;
use std::sync::Arc;

/// The defer/checkpoint drain scenario shared by the sampled sweep and
/// the exhaustive-mode run.
fn defer_drain_scenario() {
    let domain = Arc::new(QsbrDomain::new());
    let payload = Arc::new(CheckedCell::new(7u64));
    let ready = Arc::new(AtomicUsize::new(0));
    domain.register_current_thread();

    let d = domain.clone();
    let p = payload.clone();
    let rdy = ready.clone();
    let reader = thread::spawn(move || {
        d.ensure_registered();
        // Announce participation: a thread registered before the
        // defer gates reclamation; one that joins later does not.
        rdy.store(1, Ordering::Release);
        let v = p.read();
        assert_eq!(v, 7, "read after reclaim");
        // Done with protected data: park so an idle reader does not
        // gate the owner's reclamation forever.
        d.park();
    });
    while ready.load(Ordering::Acquire) == 0 {
        thread::yield_now();
    }

    // Retire the payload: the "free" poisons it.
    let p2 = payload.clone();
    domain.defer(move || p2.write(0xDEAD));

    // Drain. Terminates once the reader has parked (parked records
    // leave the min-observed scan).
    let mut freed = 0;
    while freed == 0 {
        freed = domain.checkpoint();
        thread::yield_now();
    }
    assert_eq!(freed, 1);
    assert_eq!(payload.read(), 0xDEAD);

    reader.join().unwrap();
}

#[test]
fn defer_drain_orders_reader_before_reclaim() {
    let report = Checker::new(Config {
        base_seed: 0x5eed_05b7,
        iterations: 24,
        ..Config::default()
    })
    .run(defer_drain_scenario);
    assert!(report.is_clean(), "{report}");
    assert!(report.deadlocks.is_empty(), "{report}");
}

/// The same drain under [`Policy::Dpor`]: systematic exploration instead
/// of seed sampling. The registration/drain handshakes spin, so the
/// trace space is unbounded and this asserts cleanliness across the
/// budget's worth of *distinct* schedules, not exhaustion.
#[test]
fn defer_drain_clean_under_dpor() {
    let report = Checker::new(Config {
        policy: Policy::Dpor,
        iterations: 64,
        ..Config::default()
    })
    .run(defer_drain_scenario);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn two_reader_churn_is_clean() {
    let report = Checker::new(Config {
        base_seed: 0x5eed_05b8,
        iterations: 12,
        ..Config::default()
    })
    .run(|| {
        let domain = Arc::new(QsbrDomain::new());
        let payload = Arc::new(CheckedCell::new(1u64));
        let ready = Arc::new(AtomicUsize::new(0));
        domain.register_current_thread();

        let handles: Vec<_> = (0..2)
            .map(|_| {
                let d = domain.clone();
                let p = payload.clone();
                let rdy = ready.clone();
                thread::spawn(move || {
                    d.ensure_registered();
                    rdy.fetch_add(1, Ordering::AcqRel);
                    let v = p.read();
                    assert_ne!(v, 0xDEAD);
                    // Quiesce between reads: a checkpoint is a promise the
                    // thread holds no protected references.
                    d.checkpoint();
                    d.park();
                })
            })
            .collect();
        while ready.load(Ordering::Acquire) < 2 {
            thread::yield_now();
        }

        let p2 = payload.clone();
        domain.defer(move || p2.write(0xDEAD));
        let mut freed = 0;
        while freed == 0 {
            freed = domain.checkpoint();
            thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
    });
    assert!(report.is_clean(), "{report}");
}
