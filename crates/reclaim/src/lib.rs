#![warn(missing_docs)]

//! # rcuarray-reclaim — the unified reclamation core
//!
//! One behavior-carrying trait, [`Reclaim`], is the single answer to
//! "how do I add a reclamation scheme" in this workspace. It realizes
//! the paper's `isQSBR` compile-time parameter as *behavior* rather than
//! a boolean: the read-side protocol lives in a GAT guard type, the
//! write-side protocol in [`retire`](Reclaim::retire), and quiescence in
//! [`quiesce`](Reclaim::quiesce). `RcuArray`, `RcuPtr`, `RcuList`, the
//! collections, the hazard-pointer baseline, and the bench harness all
//! consume this one interface; `rcuarray-ebr` and `rcuarray-qsbr`
//! implement it natively on `EpochZone` and `QsbrDomain`.
//!
//! Two further schemes prove the seam is real without touching any
//! consumer: [`LeakReclaim`] (defined here — no-op guards, never frees,
//! the honest upper bound the paper's UnsafeArray plays) and the
//! amortized QSBR variant in `rcuarray-qsbr` (DEBRA-style bounded drain
//! per checkpoint).
//!
//! ## The contract
//!
//! * A value may be dereferenced through a scheme-protected pointer only
//!   while a [`read_lock`](Reclaim::read_lock) guard is live (schemes
//!   whose [`guards_reads`](Reclaim::guards_reads) is `false` make the
//!   guard a no-op token and protect readers structurally instead —
//!   deferral until quiescence, or never freeing at all).
//! * [`retire`](Reclaim::retire) takes ownership of an unlinked object's
//!   destructor. The scheme chooses *when* to run it: synchronously after
//!   draining readers (EBR, hazard), deferred until a quiescent state
//!   (QSBR), or never (leak).
//! * [`quiesce`](Reclaim::quiesce) announces the calling thread holds no
//!   protected pointers, returning how many retired objects were freed.
//!   Synchronous schemes return 0.

use rcuarray_analysis::atomic::{AtomicU64, Ordering};

/// A retired object: an unlinked allocation's destructor, plus the
/// accounting hints schemes key on.
///
/// The byte hint feeds backlog gauges (QSBR's `pending_bytes`); the
/// address hint lets pointer-scanning schemes (hazard pointers) wait for
/// the exact retired pointer to evacuate. Schemes that need neither
/// simply ignore them.
pub struct Retired {
    bytes: usize,
    addr: usize,
    run: Box<dyn FnOnce() + Send>,
}

impl Retired {
    /// A retired object with no accounting hints.
    pub fn new(run: impl FnOnce() + Send + 'static) -> Self {
        Self::with_hint(0, 0, run)
    }

    /// A retired object carrying an approximate heap footprint.
    pub fn with_bytes(bytes: usize, run: impl FnOnce() + Send + 'static) -> Self {
        Self::with_hint(bytes, 0, run)
    }

    /// A retired object carrying both a byte footprint and the retired
    /// pointer's address (for hazard-style scanning schemes).
    pub fn with_hint(bytes: usize, addr: usize, run: impl FnOnce() + Send + 'static) -> Self {
        Retired {
            bytes,
            addr,
            run: Box::new(run),
        }
    }

    /// Approximate heap footprint of the retired object.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Address of the retired allocation (0 when the retirer provided
    /// none).
    #[inline]
    pub fn addr(&self) -> usize {
        self.addr
    }

    /// Run the destructor now (the scheme has proven no reader holds the
    /// object).
    #[inline]
    pub fn run(self) {
        (self.run)()
    }

    /// Decompose into `(bytes, destructor)` for schemes that thread the
    /// byte hint through their own defer machinery.
    #[inline]
    pub fn into_parts(self) -> (usize, Box<dyn FnOnce() + Send>) {
        (self.bytes, self.run)
    }

    /// Leak the retired object: the destructor is forgotten, never run.
    /// Only [`LeakReclaim`]-style schemes call this — it is what makes
    /// their unguarded readers sound.
    #[inline]
    pub fn leak(self) {
        std::mem::forget(self.run);
    }
}

impl std::fmt::Debug for Retired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Retired")
            .field("bytes", &self.bytes)
            .field("addr", &self.addr)
            .finish()
    }
}

/// Scheme-agnostic reclamation counters, the per-scheme stats hook of the
/// unified trait. Each scheme fills the fields that mean something for it
/// and leaves the rest zero.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Read-side guard acquisitions (EBR pins, hazard protections; zero
    /// for schemes whose guards are free).
    pub guards: u64,
    /// Read-side protocol retries (EBR's read-increment-verify loop,
    /// hazard re-validations).
    pub guard_retries: u64,
    /// Writer-side epoch advances (EBR).
    pub advances: u64,
    /// Objects handed to [`Reclaim::retire`].
    pub retired: u64,
    /// Retired objects whose destructors have run.
    pub reclaimed: u64,
    /// Retired objects not yet reclaimed (`retired - reclaimed`; for a
    /// leaking scheme this equals `retired` forever).
    pub pending: u64,
    /// Approximate bytes awaiting reclamation.
    pub pending_bytes: u64,
    /// How many epochs the slowest participant trails the writer (QSBR's
    /// `state_epoch - min_observed`; zero for synchronous schemes).
    pub epoch_lag: u64,
    /// True when these counters are domain-global rather than
    /// per-instance: merging takes the elementwise maximum instead of
    /// summing, so cloned handles of one shared domain are not
    /// multiple-counted.
    pub domain_wide: bool,
}

impl ReclaimStats {
    /// Combine stats from several per-locale reclaimer instances:
    /// per-instance counters sum, domain-wide counters (every instance
    /// reports the same shared domain) take the maximum.
    pub fn merge(self, other: ReclaimStats) -> ReclaimStats {
        if self.domain_wide || other.domain_wide {
            ReclaimStats {
                guards: self.guards.max(other.guards),
                guard_retries: self.guard_retries.max(other.guard_retries),
                advances: self.advances.max(other.advances),
                retired: self.retired.max(other.retired),
                reclaimed: self.reclaimed.max(other.reclaimed),
                pending: self.pending.max(other.pending),
                pending_bytes: self.pending_bytes.max(other.pending_bytes),
                epoch_lag: self.epoch_lag.max(other.epoch_lag),
                domain_wide: true,
            }
        } else {
            ReclaimStats {
                guards: self.guards + other.guards,
                guard_retries: self.guard_retries + other.guard_retries,
                advances: self.advances + other.advances,
                retired: self.retired + other.retired,
                reclaimed: self.reclaimed + other.reclaimed,
                pending: self.pending + other.pending,
                pending_bytes: self.pending_bytes + other.pending_bytes,
                epoch_lag: self.epoch_lag.max(other.epoch_lag),
                domain_wide: false,
            }
        }
    }
}

/// A memory reclamation scheme: the read-side protocol as a guard type,
/// the write-side protocol as [`retire`](Self::retire), quiescence as
/// [`quiesce`](Self::quiesce). See the [module docs](self) for the
/// contract.
pub trait Reclaim: Send + Sync + 'static {
    /// RAII read-side critical section. Protected pointers may be
    /// dereferenced only while a guard is live. Schemes with free reads
    /// (QSBR, leak) use a zero-sized token.
    type Guard<'a>
    where
        Self: 'a;

    /// Enter a read-side critical section.
    fn read_lock(&self) -> Self::Guard<'_>;

    /// Hand over an unlinked object; the scheme frees it once no reader
    /// can hold it (possibly before returning, possibly never).
    fn retire(&self, retired: Retired);

    /// Announce a quiescent state for the calling thread and drain
    /// whatever the scheme's policy allows. Returns the number of retired
    /// objects freed by this call (0 for synchronous schemes).
    fn quiesce(&self) -> usize;

    /// Whether readers must hold a guard for safety. `false` means the
    /// guard is advisory (participation registration) and reads are
    /// structurally protected.
    fn guards_reads(&self) -> bool;

    /// Scheme name for harness output ("ebr", "qsbr", "leak", ...).
    fn name(&self) -> &'static str;

    /// Current counters. Named `reclaim_stats` (not `stats`) so inherent
    /// `stats()` methods on implementing types stay unambiguous.
    fn reclaim_stats(&self) -> ReclaimStats;
}

/// The never-free scheme: guards are no-ops, retired objects are leaked.
///
/// This is the paper's *UnsafeArray* upper bound made honest: running the
/// identical `RcuArray` code path with zero read-side cost and zero
/// reclamation, it prices exactly what EBR/QSBR protection costs — and it
/// is *safe*, because never freeing is what makes unguarded readers
/// sound. Memory grows monotonically with retirement; use only for
/// benchmarking and bounded test runs.
#[derive(Debug, Default)]
pub struct LeakReclaim {
    retired: AtomicU64,
    retired_bytes: AtomicU64,
}

impl LeakReclaim {
    /// A fresh leaking reclaimer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Reclaim for LeakReclaim {
    type Guard<'a> = ();

    #[inline]
    fn read_lock(&self) -> Self::Guard<'_> {}

    fn retire(&self, retired: Retired) {
        // SeqCst: these are cold (one per resize) correctness counters —
        // the monotone-defer assertion in the checker harness reads them
        // cross-thread.
        self.retired.fetch_add(1, Ordering::SeqCst);
        self.retired_bytes
            .fetch_add(retired.bytes() as u64, Ordering::SeqCst);
        retired.leak();
    }

    #[inline]
    fn quiesce(&self) -> usize {
        0
    }

    #[inline]
    fn guards_reads(&self) -> bool {
        false
    }

    #[inline]
    fn name(&self) -> &'static str {
        "leak"
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        let retired = self.retired.load(Ordering::SeqCst);
        ReclaimStats {
            retired,
            pending: retired,
            pending_bytes: self.retired_bytes.load(Ordering::SeqCst),
            ..ReclaimStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn retired_runs_exactly_once() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let r = Retired::with_bytes(64, move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(r.bytes(), 64);
        assert_eq!(r.addr(), 0);
        r.run();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retired_into_parts_preserves_the_closure() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let (bytes, run) = Retired::with_hint(8, 0xdead, move || {
            h.fetch_add(1, Ordering::SeqCst);
        })
        .into_parts();
        assert_eq!(bytes, 8);
        run();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn leak_never_runs_destructors_and_counts_monotonically() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let leak = LeakReclaim::new();
        for i in 0..10u64 {
            let c = Canary(Arc::clone(&drops));
            leak.retire(Retired::with_bytes(16, move || drop(c)));
            let s = leak.reclaim_stats();
            assert_eq!(s.retired, i + 1, "defer count must be monotone");
            assert_eq!(s.pending, i + 1);
            assert_eq!(s.reclaimed, 0);
        }
        assert_eq!(leak.quiesce(), 0, "quiesce frees nothing");
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "LeakReclaim must never run a destructor"
        );
        assert_eq!(leak.reclaim_stats().pending_bytes, 160);
        assert!(!leak.guards_reads());
        assert_eq!(leak.name(), "leak");
        // Guard is a free token.
        leak.read_lock();
    }

    #[test]
    fn merge_sums_per_instance_counters() {
        let a = ReclaimStats {
            guards: 3,
            retired: 2,
            ..Default::default()
        };
        let b = ReclaimStats {
            guards: 4,
            retired: 1,
            epoch_lag: 5,
            ..Default::default()
        };
        let m = a.merge(b);
        assert_eq!(m.guards, 7);
        assert_eq!(m.retired, 3);
        assert_eq!(m.epoch_lag, 5, "lag is a maximum even when summing");
        assert!(!m.domain_wide);
    }

    #[test]
    fn merge_takes_max_for_domain_wide_counters() {
        let a = ReclaimStats {
            retired: 10,
            pending: 4,
            domain_wide: true,
            ..Default::default()
        };
        let m = a.merge(a);
        assert_eq!(m.retired, 10, "shared domain must not be double-counted");
        assert_eq!(m.pending, 4);
        assert!(m.domain_wide);
    }

    #[test]
    fn trait_is_usable_behind_a_generic() {
        fn churn<R: Reclaim>(r: &R) -> u64 {
            let _g = r.read_lock();
            r.retire(Retired::new(|| {}));
            r.quiesce();
            r.reclaim_stats().retired
        }
        assert_eq!(churn(&LeakReclaim::new()), 1);
    }
}
