#![warn(missing_docs)]

//! # rcuarray-reclaim — the unified reclamation core
//!
//! One behavior-carrying trait, [`Reclaim`], is the single answer to
//! "how do I add a reclamation scheme" in this workspace. It realizes
//! the paper's `isQSBR` compile-time parameter as *behavior* rather than
//! a boolean: the read-side protocol lives in a GAT guard type, the
//! write-side protocol in [`retire`](Reclaim::retire), and quiescence in
//! [`quiesce`](Reclaim::quiesce). `RcuArray`, `RcuPtr`, `RcuList`, the
//! collections, the hazard-pointer baseline, and the bench harness all
//! consume this one interface; `rcuarray-ebr` and `rcuarray-qsbr`
//! implement it natively on `EpochZone` and `QsbrDomain`.
//!
//! Two further schemes prove the seam is real without touching any
//! consumer: [`LeakReclaim`] (defined here — no-op guards, never frees,
//! the honest upper bound the paper's UnsafeArray plays) and the
//! amortized QSBR variant in `rcuarray-qsbr` (DEBRA-style bounded drain
//! per checkpoint).
//!
//! ## The contract
//!
//! * A value may be dereferenced through a scheme-protected pointer only
//!   while a [`read_lock`](Reclaim::read_lock) guard is live (schemes
//!   whose [`guards_reads`](Reclaim::guards_reads) is `false` make the
//!   guard a no-op token and protect readers structurally instead —
//!   deferral until quiescence, or never freeing at all).
//! * [`retire`](Reclaim::retire) takes ownership of an unlinked object's
//!   destructor. The scheme chooses *when* to run it: synchronously after
//!   draining readers (EBR, hazard), deferred until a quiescent state
//!   (QSBR), or never (leak).
//! * [`quiesce`](Reclaim::quiesce) announces the calling thread holds no
//!   protected pointers, returning how many retired objects were freed.
//!   Synchronous schemes return 0.
//!
//! ## Robustness (DESIGN.md §9)
//!
//! Epoch schemes are classically fragile: one stalled reader blocks
//! reclamation forever and the backlog grows without bound. Two knobs
//! bound the damage:
//!
//! * [`PressureConfig`] puts a byte budget on the backlog. Past the
//!   [`high_watermark`](PressureConfig::high_watermark) a retiring writer
//!   *helps reclaim* (a forced [`quiesce`](Reclaim::quiesce)); past the
//!   hard [`max_backlog_bytes`](PressureConfig::max_backlog_bytes) cap,
//!   [`try_retire`](Reclaim::try_retire) degrades gracefully to
//!   `Err(`[`Backpressure`]`)` and
//!   [`retire_or_quiesce`](Reclaim::retire_or_quiesce) is the blocking
//!   fallback.
//! * [`StallPolicy`] tells a scheme when a non-progressing participant
//!   counts as *stalled*: QSBR quarantines it (force-park), EBR flips the
//!   writer into an evacuation epoch instead of spinning forever.

use rcuarray_analysis::atomic::{AtomicU64, Ordering};
use rcuarray_obs::LazyCounter;

// Process-wide pressure telemetry (the per-scheme stats carry the
// scheme-local view; these totals feed BENCH_*.json).
static OBS_FORCED_DRAINS: LazyCounter = LazyCounter::new(
    "rcuarray_reclaim_forced_drains_total",
    "writer-help drains forced by backlog pressure past the high watermark",
);
static OBS_BACKPRESSURE: LazyCounter = LazyCounter::new(
    "rcuarray_reclaim_backpressure_total",
    "try_retire rejections at the hard backlog-bytes cap",
);
static OBS_CAP_OVERRUNS: LazyCounter = LazyCounter::new(
    "rcuarray_reclaim_cap_overruns_total",
    "retire_or_quiesce escapes past the cap after quiescing made no progress",
);

/// Process-wide pressure event totals:
/// `(forced_drains, backpressure_rejections, cap_overruns)`. Exposed so
/// the bench harness can record the cost of robustness without parsing
/// the metrics registry.
pub fn pressure_event_totals() -> (u64, u64, u64) {
    (
        OBS_FORCED_DRAINS.value(),
        OBS_BACKPRESSURE.value(),
        OBS_CAP_OVERRUNS.value(),
    )
}

/// A retired object: an unlinked allocation's destructor, plus the
/// accounting hints schemes key on.
///
/// The byte hint feeds backlog gauges (QSBR's `pending_bytes`); the
/// address hint lets pointer-scanning schemes (hazard pointers) wait for
/// the exact retired pointer to evacuate. Schemes that need neither
/// simply ignore them.
pub struct Retired {
    bytes: usize,
    addr: usize,
    run: Box<dyn FnOnce() + Send>,
    /// Shadow-heap identity (fresh id, never the address) for the
    /// checker's reclamation-lifecycle oracle. `None` for untracked
    /// retireds — production code pays nothing for the field.
    #[cfg(feature = "check")]
    shadow: Option<rcuarray_analysis::shadow::ShadowId>,
}

impl Retired {
    /// A retired object with no accounting hints.
    pub fn new(run: impl FnOnce() + Send + 'static) -> Self {
        Self::with_hint(0, 0, run)
    }

    /// A retired object carrying an approximate heap footprint.
    pub fn with_bytes(bytes: usize, run: impl FnOnce() + Send + 'static) -> Self {
        Self::with_hint(bytes, 0, run)
    }

    /// A retired object carrying both a byte footprint and the retired
    /// pointer's address (for hazard-style scanning schemes).
    pub fn with_hint(bytes: usize, addr: usize, run: impl FnOnce() + Send + 'static) -> Self {
        Retired {
            bytes,
            addr,
            run: Box::new(run),
            #[cfg(feature = "check")]
            shadow: None,
        }
    }

    /// Attach a shadow-heap identity: the object transitions
    /// `Live → Retired` in the oracle now, and its destructor — however
    /// the scheme runs it ([`run`](Self::run), [`into_parts`](Self::into_parts)
    /// or [`leak`](Self::leak)) — reports the matching lifecycle edge.
    /// Double-retire, double-reclaim, reclaim-without-retire and
    /// retired-but-never-reclaimed (leak accounting) all become
    /// deterministic checker reports.
    #[cfg(feature = "check")]
    pub fn tracked(mut self, id: rcuarray_analysis::shadow::ShadowId) -> Self {
        rcuarray_analysis::shadow::on_retire(id);
        self.shadow = Some(id);
        self
    }

    /// Approximate heap footprint of the retired object.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Address of the retired allocation (0 when the retirer provided
    /// none).
    #[inline]
    pub fn addr(&self) -> usize {
        self.addr
    }

    /// Run the destructor now (the scheme has proven no reader holds the
    /// object).
    #[inline]
    pub fn run(self) {
        // The oracle transitions to Reclaimed *before* the destructor
        // body: the scheme has committed to freeing, so any tracked read
        // interleaved past this point is already a protocol violation.
        #[cfg(feature = "check")]
        if let Some(id) = self.shadow {
            rcuarray_analysis::shadow::on_reclaim(id);
        }
        (self.run)()
    }

    /// Decompose into `(bytes, destructor)` for schemes that thread the
    /// byte hint through their own defer machinery.
    #[inline]
    pub fn into_parts(self) -> (usize, Box<dyn FnOnce() + Send>) {
        #[cfg(feature = "check")]
        if let Some(id) = self.shadow {
            let run = self.run;
            return (
                self.bytes,
                Box::new(move || {
                    rcuarray_analysis::shadow::on_reclaim(id);
                    run();
                }),
            );
        }
        (self.bytes, self.run)
    }

    /// Leak the retired object: the destructor is forgotten, never run.
    /// Only [`LeakReclaim`]-style schemes call this — it is what makes
    /// their unguarded readers sound.
    #[inline]
    pub fn leak(self) {
        // Deliberate leaks drop out of the oracle's leak accounting.
        #[cfg(feature = "check")]
        if let Some(id) = self.shadow {
            rcuarray_analysis::shadow::on_leak(id);
        }
        std::mem::forget(self.run);
    }
}

impl std::fmt::Debug for Retired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Retired")
            .field("bytes", &self.bytes)
            .field("addr", &self.addr)
            .finish()
    }
}

/// A byte budget on a scheme's retirement backlog (DESIGN.md §9).
///
/// Both thresholds are approximate: the backlog is measured through the
/// byte hints on [`Retired`], and a single retire may overshoot either
/// threshold by its own size ("one retire of slack").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureConfig {
    /// Hard cap: once `pending_bytes` reaches this,
    /// [`try_retire`](Reclaim::try_retire) refuses with [`Backpressure`].
    /// `u64::MAX` disables the cap.
    pub max_backlog_bytes: u64,
    /// Soft threshold: a retire that would push `pending_bytes` past this
    /// first makes the *writer help reclaim* (one forced
    /// [`quiesce`](Reclaim::quiesce)). `u64::MAX` disables helping.
    pub high_watermark: u64,
}

impl PressureConfig {
    /// No pressure: retires never drain or reject (the pre-robustness
    /// behavior, and the default everywhere).
    pub const fn unbounded() -> Self {
        PressureConfig {
            max_backlog_bytes: u64::MAX,
            high_watermark: u64::MAX,
        }
    }

    /// A hard cap with the watermark at half of it — writers start helping
    /// at 50% occupancy, rejections begin at 100%.
    pub const fn bounded(max_backlog_bytes: u64) -> Self {
        PressureConfig {
            max_backlog_bytes,
            high_watermark: max_backlog_bytes / 2,
        }
    }

    /// Whether any threshold is active.
    #[inline]
    pub fn is_bounded(&self) -> bool {
        self.max_backlog_bytes != u64::MAX || self.high_watermark != u64::MAX
    }

    /// Validate invariants (positive cap, watermark not above the cap).
    pub fn validate(&self) {
        assert!(
            self.max_backlog_bytes > 0,
            "max_backlog_bytes must be positive: a zero cap rejects every retire"
        );
        assert!(
            self.high_watermark <= self.max_backlog_bytes,
            "high_watermark above max_backlog_bytes would reject before helping"
        );
    }
}

impl Default for PressureConfig {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// When a non-progressing participant counts as *stalled* (DESIGN.md §9).
///
/// Progress is measured in protocol events, never wall clock, so stall
/// detection stays deterministic under the `rcuarray-analysis` checker:
/// QSBR compares epoch lag plus a monotonic tick counter advanced by
/// reclaiming checkpoints; EBR counts writer backoff steps against a
/// parity counter that never drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallPolicy {
    /// QSBR: a participant whose observed epoch trails the state epoch by
    /// at least this many epochs is a quarantine candidate. `u64::MAX`
    /// disables stall detection entirely.
    pub lag_epochs: u64,
    /// How long a candidate must additionally fail to make progress
    /// before it is declared stalled: QSBR counts domain ticks since the
    /// participant's last progress stamp; EBR counts writer backoff
    /// snoozes against the non-draining parity counter (`u64::MAX` means
    /// the EBR writer waits forever — the classic protocol).
    pub patience: u64,
}

impl StallPolicy {
    /// No stall detection (the pre-robustness behavior, and the default).
    pub const fn disabled() -> Self {
        StallPolicy {
            lag_epochs: u64::MAX,
            patience: u64::MAX,
        }
    }

    /// Detect stalls after `lag_epochs` of epoch lag and `patience`
    /// progress-free ticks/snoozes.
    pub const fn after(lag_epochs: u64, patience: u64) -> Self {
        StallPolicy {
            lag_epochs,
            patience,
        }
    }

    /// Whether QSBR-style lag detection is active.
    #[inline]
    pub fn detects_lag(&self) -> bool {
        self.lag_epochs != u64::MAX
    }

    /// Whether EBR-style bounded waiting is active.
    #[inline]
    pub fn bounds_waits(&self) -> bool {
        self.patience != u64::MAX
    }
}

impl Default for StallPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The backlog is at its hard cap: the scheme refused to take the object.
/// Ownership comes back to the caller via
/// [`into_retired`](Backpressure::into_retired) so nothing is leaked.
pub struct Backpressure {
    /// Approximate backlog bytes at the moment of rejection.
    pub pending_bytes: u64,
    /// The cap that was hit.
    pub max_backlog_bytes: u64,
    retired: Retired,
}

impl Backpressure {
    /// Recover the rejected object to retry, quiesce, or leak explicitly.
    pub fn into_retired(self) -> Retired {
        self.retired
    }
}

impl std::fmt::Debug for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backpressure")
            .field("pending_bytes", &self.pending_bytes)
            .field("max_backlog_bytes", &self.max_backlog_bytes)
            .finish()
    }
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retirement backlog at capacity: {} pending bytes >= {} cap",
            self.pending_bytes, self.max_backlog_bytes
        )
    }
}

/// Scheme-agnostic reclamation counters, the per-scheme stats hook of the
/// unified trait. Each scheme fills the fields that mean something for it
/// and leaves the rest zero.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Read-side guard acquisitions (EBR pins, hazard protections; zero
    /// for schemes whose guards are free).
    pub guards: u64,
    /// Read-side protocol retries (EBR's read-increment-verify loop,
    /// hazard re-validations).
    pub guard_retries: u64,
    /// Writer-side epoch advances (EBR).
    pub advances: u64,
    /// Objects handed to [`Reclaim::retire`].
    pub retired: u64,
    /// Retired objects whose destructors have run.
    pub reclaimed: u64,
    /// Retired objects not yet reclaimed (`retired - reclaimed`; for a
    /// leaking scheme this equals `retired` forever).
    pub pending: u64,
    /// Approximate bytes awaiting reclamation.
    pub pending_bytes: u64,
    /// How many epochs the slowest participant trails the writer (QSBR's
    /// `state_epoch - min_observed`; zero for synchronous schemes).
    pub epoch_lag: u64,
    /// Stall events the scheme has observed: quarantined participants for
    /// QSBR-family schemes, writer waits that hit the stall bound for EBR.
    pub stalled: u64,
    /// Guards released while their thread was unwinding from a panic.
    pub guard_panics: u64,
    /// True when these counters are domain-global rather than
    /// per-instance: merging takes the elementwise maximum instead of
    /// summing, so cloned handles of one shared domain are not
    /// multiple-counted.
    pub domain_wide: bool,
}

impl ReclaimStats {
    /// Combine stats from several per-locale reclaimer instances:
    /// per-instance counters sum, domain-wide counters (every instance
    /// reports the same shared domain) take the maximum.
    pub fn merge(self, other: ReclaimStats) -> ReclaimStats {
        if self.domain_wide || other.domain_wide {
            ReclaimStats {
                guards: self.guards.max(other.guards),
                guard_retries: self.guard_retries.max(other.guard_retries),
                advances: self.advances.max(other.advances),
                retired: self.retired.max(other.retired),
                reclaimed: self.reclaimed.max(other.reclaimed),
                pending: self.pending.max(other.pending),
                pending_bytes: self.pending_bytes.max(other.pending_bytes),
                epoch_lag: self.epoch_lag.max(other.epoch_lag),
                stalled: self.stalled.max(other.stalled),
                guard_panics: self.guard_panics.max(other.guard_panics),
                domain_wide: true,
            }
        } else {
            ReclaimStats {
                guards: self.guards + other.guards,
                guard_retries: self.guard_retries + other.guard_retries,
                advances: self.advances + other.advances,
                retired: self.retired + other.retired,
                reclaimed: self.reclaimed + other.reclaimed,
                pending: self.pending + other.pending,
                pending_bytes: self.pending_bytes + other.pending_bytes,
                epoch_lag: self.epoch_lag.max(other.epoch_lag),
                stalled: self.stalled + other.stalled,
                guard_panics: self.guard_panics + other.guard_panics,
                domain_wide: false,
            }
        }
    }
}

/// A memory reclamation scheme: the read-side protocol as a guard type,
/// the write-side protocol as [`retire`](Self::retire), quiescence as
/// [`quiesce`](Self::quiesce). See the [module docs](self) for the
/// contract.
pub trait Reclaim: Send + Sync + 'static {
    /// RAII read-side critical section. Protected pointers may be
    /// dereferenced only while a guard is live. Schemes with free reads
    /// (QSBR, leak) use a zero-sized token.
    type Guard<'a>
    where
        Self: 'a;

    /// Enter a read-side critical section.
    fn read_lock(&self) -> Self::Guard<'_>;

    /// Hand over an unlinked object; the scheme frees it once no reader
    /// can hold it (possibly before returning, possibly never).
    fn retire(&self, retired: Retired);

    /// Announce a quiescent state for the calling thread and drain
    /// whatever the scheme's policy allows. Returns the number of retired
    /// objects freed by this call (0 for synchronous schemes).
    fn quiesce(&self) -> usize;

    /// Whether readers must hold a guard for safety. `false` means the
    /// guard is advisory (participation registration) and reads are
    /// structurally protected.
    fn guards_reads(&self) -> bool;

    /// Scheme name for harness output ("ebr", "qsbr", "leak", ...).
    fn name(&self) -> &'static str;

    /// Current counters. Named `reclaim_stats` (not `stats`) so inherent
    /// `stats()` methods on implementing types stay unambiguous.
    fn reclaim_stats(&self) -> ReclaimStats;

    /// The scheme's configured backlog budget. The default is unbounded;
    /// schemes with a configurable backlog override this.
    #[inline]
    fn pressure(&self) -> PressureConfig {
        PressureConfig::unbounded()
    }

    /// [`retire`](Self::retire) under the scheme's [`PressureConfig`]:
    /// past the high watermark the calling writer first helps reclaim
    /// (one forced [`quiesce`](Self::quiesce)); at the hard cap the
    /// object is handed back inside `Err(`[`Backpressure`]`)` instead of
    /// growing the backlog further.
    ///
    /// With the default unbounded pressure this is exactly `retire` (and
    /// costs nothing extra). A single accepted retire may overshoot the
    /// cap by its own size — the "one retire of slack" contract.
    fn try_retire(&self, retired: Retired) -> Result<(), Backpressure> {
        let p = self.pressure();
        if !p.is_bounded() {
            self.retire(retired);
            return Ok(());
        }
        let mut pending = self.reclaim_stats().pending_bytes;
        if pending.saturating_add(retired.bytes() as u64) > p.high_watermark {
            // Writer-help: drain before adding to the backlog.
            self.quiesce();
            OBS_FORCED_DRAINS.inc();
            pending = self.reclaim_stats().pending_bytes;
        }
        if pending >= p.max_backlog_bytes {
            OBS_BACKPRESSURE.inc();
            return Err(Backpressure {
                pending_bytes: pending,
                max_backlog_bytes: p.max_backlog_bytes,
                retired,
            });
        }
        self.retire(retired);
        Ok(())
    }

    /// Blocking fallback for [`try_retire`](Self::try_retire): quiesce
    /// and retry until the backlog drops below the cap. Returns the
    /// number of objects freed while waiting.
    ///
    /// Liveness escape: if two consecutive quiesces free nothing (the
    /// backlog is gated by something this thread cannot drain — e.g. an
    /// EBR reader pinned forever), the object is retired anyway rather
    /// than deadlocking the writer; the overshoot is counted in the
    /// `rcuarray_reclaim_cap_overruns_total` metric. Under stall
    /// detection ([`StallPolicy`]) the gating participant is eventually
    /// quarantined, so the escape only fires when detection is off or
    /// the stall is undetectable.
    fn retire_or_quiesce(&self, retired: Retired) -> usize {
        let mut freed = 0usize;
        let mut r = retired;
        let mut dry = 0u32;
        loop {
            match self.try_retire(r) {
                Ok(()) => return freed,
                Err(bp) => {
                    r = bp.into_retired();
                    let n = self.quiesce();
                    freed += n;
                    if n == 0 {
                        dry += 1;
                        if dry >= 2 {
                            OBS_CAP_OVERRUNS.inc();
                            self.retire(r);
                            return freed;
                        }
                        rcuarray_analysis::thread::yield_now();
                    } else {
                        dry = 0;
                    }
                }
            }
        }
    }
}

/// The never-free scheme: guards are no-ops, retired objects are leaked.
///
/// This is the paper's *UnsafeArray* upper bound made honest: running the
/// identical `RcuArray` code path with zero read-side cost and zero
/// reclamation, it prices exactly what EBR/QSBR protection costs — and it
/// is *safe*, because never freeing is what makes unguarded readers
/// sound. Memory grows monotonically with retirement; use only for
/// benchmarking and bounded test runs.
///
/// Because nothing ever frees, a [`PressureConfig`] cap on a leaking
/// scheme is a *retirement budget*: once the leaked bytes reach the cap,
/// [`try_retire`](Reclaim::try_retire) rejects — which is what keeps the
/// chaos suite's leak runs memory-bounded.
#[derive(Debug)]
pub struct LeakReclaim {
    retired: AtomicU64,
    retired_bytes: AtomicU64,
    // Stored as atomics only so the shared handle stays `Sync`; set once
    // at construction/configuration, read on the (cold) retire path.
    cap_bytes: AtomicU64,
    watermark_bytes: AtomicU64,
}

impl Default for LeakReclaim {
    fn default() -> Self {
        Self::new()
    }
}

impl LeakReclaim {
    /// A fresh leaking reclaimer with no retirement budget.
    pub fn new() -> Self {
        Self::with_pressure(PressureConfig::unbounded())
    }

    /// A leaking reclaimer with a retirement budget.
    pub fn with_pressure(pressure: PressureConfig) -> Self {
        LeakReclaim {
            retired: AtomicU64::new(0),
            retired_bytes: AtomicU64::new(0),
            cap_bytes: AtomicU64::new(pressure.max_backlog_bytes),
            watermark_bytes: AtomicU64::new(pressure.high_watermark),
        }
    }

    /// Replace the retirement budget.
    pub fn set_pressure(&self, pressure: PressureConfig) {
        pressure.validate();
        self.cap_bytes
            .store(pressure.max_backlog_bytes, Ordering::SeqCst);
        self.watermark_bytes
            .store(pressure.high_watermark, Ordering::SeqCst);
    }
}

impl Reclaim for LeakReclaim {
    type Guard<'a> = ();

    #[inline]
    fn read_lock(&self) -> Self::Guard<'_> {}

    fn retire(&self, retired: Retired) {
        // SeqCst: these are cold (one per resize) correctness counters —
        // the monotone-defer assertion in the checker harness reads them
        // cross-thread.
        self.retired.fetch_add(1, Ordering::SeqCst);
        self.retired_bytes
            .fetch_add(retired.bytes() as u64, Ordering::SeqCst);
        retired.leak();
    }

    #[inline]
    fn quiesce(&self) -> usize {
        0
    }

    #[inline]
    fn guards_reads(&self) -> bool {
        false
    }

    #[inline]
    fn name(&self) -> &'static str {
        "leak"
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        let retired = self.retired.load(Ordering::SeqCst);
        ReclaimStats {
            retired,
            pending: retired,
            pending_bytes: self.retired_bytes.load(Ordering::SeqCst),
            ..ReclaimStats::default()
        }
    }

    fn pressure(&self) -> PressureConfig {
        PressureConfig {
            max_backlog_bytes: self.cap_bytes.load(Ordering::SeqCst),
            high_watermark: self.watermark_bytes.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn retired_runs_exactly_once() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let r = Retired::with_bytes(64, move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(r.bytes(), 64);
        assert_eq!(r.addr(), 0);
        r.run();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retired_into_parts_preserves_the_closure() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let (bytes, run) = Retired::with_hint(8, 0xdead, move || {
            h.fetch_add(1, Ordering::SeqCst);
        })
        .into_parts();
        assert_eq!(bytes, 8);
        run();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn leak_never_runs_destructors_and_counts_monotonically() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let leak = LeakReclaim::new();
        for i in 0..10u64 {
            let c = Canary(Arc::clone(&drops));
            leak.retire(Retired::with_bytes(16, move || drop(c)));
            let s = leak.reclaim_stats();
            assert_eq!(s.retired, i + 1, "defer count must be monotone");
            assert_eq!(s.pending, i + 1);
            assert_eq!(s.reclaimed, 0);
        }
        assert_eq!(leak.quiesce(), 0, "quiesce frees nothing");
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "LeakReclaim must never run a destructor"
        );
        assert_eq!(leak.reclaim_stats().pending_bytes, 160);
        assert!(!leak.guards_reads());
        assert_eq!(leak.name(), "leak");
        // Guard is a free token.
        leak.read_lock();
    }

    #[test]
    fn merge_sums_per_instance_counters() {
        let a = ReclaimStats {
            guards: 3,
            retired: 2,
            ..Default::default()
        };
        let b = ReclaimStats {
            guards: 4,
            retired: 1,
            epoch_lag: 5,
            ..Default::default()
        };
        let m = a.merge(b);
        assert_eq!(m.guards, 7);
        assert_eq!(m.retired, 3);
        assert_eq!(m.epoch_lag, 5, "lag is a maximum even when summing");
        assert!(!m.domain_wide);
    }

    #[test]
    fn merge_takes_max_for_domain_wide_counters() {
        let a = ReclaimStats {
            retired: 10,
            pending: 4,
            domain_wide: true,
            ..Default::default()
        };
        let m = a.merge(a);
        assert_eq!(m.retired, 10, "shared domain must not be double-counted");
        assert_eq!(m.pending, 4);
        assert!(m.domain_wide);
    }

    #[test]
    fn trait_is_usable_behind_a_generic() {
        fn churn<R: Reclaim>(r: &R) -> u64 {
            let _g = r.read_lock();
            r.retire(Retired::new(|| {}));
            r.quiesce();
            r.reclaim_stats().retired
        }
        assert_eq!(churn(&LeakReclaim::new()), 1);
    }

    #[test]
    fn pressure_config_constructors_and_validation() {
        let p = PressureConfig::unbounded();
        assert!(!p.is_bounded());
        p.validate();
        let b = PressureConfig::bounded(1024);
        assert!(b.is_bounded());
        assert_eq!(b.high_watermark, 512);
        b.validate();
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn pressure_watermark_above_cap_rejected() {
        PressureConfig {
            max_backlog_bytes: 10,
            high_watermark: 11,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn pressure_zero_cap_rejected() {
        PressureConfig {
            max_backlog_bytes: 0,
            high_watermark: 0,
        }
        .validate();
    }

    #[test]
    fn stall_policy_flags() {
        let off = StallPolicy::disabled();
        assert!(!off.detects_lag());
        assert!(!off.bounds_waits());
        let on = StallPolicy::after(4, 2);
        assert!(on.detects_lag());
        assert!(on.bounds_waits());
    }

    #[test]
    fn unbounded_try_retire_is_plain_retire() {
        let leak = LeakReclaim::new();
        assert!(leak.try_retire(Retired::with_bytes(1 << 40, || {})).is_ok());
    }

    #[test]
    fn try_retire_rejects_at_the_cap_and_hands_the_object_back() {
        let leak = LeakReclaim::with_pressure(PressureConfig {
            max_backlog_bytes: 100,
            high_watermark: 100,
        });
        // First retire may overshoot the cap by its own size (slack).
        assert!(leak.try_retire(Retired::with_bytes(100, || {})).is_ok());
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let err = leak
            .try_retire(Retired::with_bytes(8, move || {
                h.fetch_add(1, Ordering::SeqCst);
            }))
            .expect_err("backlog at cap must reject");
        assert_eq!(err.pending_bytes, 100);
        assert_eq!(err.max_backlog_bytes, 100);
        // Ownership comes back: run the destructor ourselves.
        err.into_retired().run();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // The rejected retire never entered the backlog.
        assert_eq!(leak.reclaim_stats().pending_bytes, 100);
    }

    #[test]
    fn retire_or_quiesce_escapes_when_nothing_can_drain() {
        // A leaking scheme can never drain; the blocking fallback must
        // not deadlock — it retires past the cap and reports 0 freed.
        let leak = LeakReclaim::with_pressure(PressureConfig::bounded(64));
        leak.retire(Retired::with_bytes(64, || {}));
        assert_eq!(leak.retire_or_quiesce(Retired::with_bytes(8, || {})), 0);
        assert_eq!(leak.reclaim_stats().pending_bytes, 72);
    }

    #[test]
    fn backpressure_formats_both_numbers() {
        let leak = LeakReclaim::with_pressure(PressureConfig {
            max_backlog_bytes: 10,
            high_watermark: 10,
        });
        leak.retire(Retired::with_bytes(10, || {}));
        let err = leak.try_retire(Retired::new(|| {})).unwrap_err();
        let s = format!("{err} / {err:?}");
        assert!(s.contains("10"));
    }

    #[test]
    fn merge_sums_robustness_counters_per_instance() {
        let a = ReclaimStats {
            stalled: 1,
            guard_panics: 2,
            ..Default::default()
        };
        let m = a.merge(a);
        assert_eq!(m.stalled, 2);
        assert_eq!(m.guard_panics, 4);
    }
}
