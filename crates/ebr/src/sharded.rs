//! A sharded TLS-free EBR zone: the "future improvements to the decoupled
//! EBR algorithm" the paper's conclusion plans.
//!
//! The base scheme's weakness is that *every* reader RMWs one of two
//! shared `EpochReaders` cache lines; §V-B measures the resulting
//! contention. [`ShardedEpochZone`] keeps the protocol — and keeps it
//! TLS-free — but splits each parity counter into `S` cache-line-padded
//! shards. A reader picks a shard from the address of one of its own
//! stack slots: distinct threads live on distinct stacks, so concurrent
//! readers spread across shards **without any notion of thread identity**,
//! which is the constraint the whole exercise is about (Chapel has no
//! TLS). A writer draining a parity now scans `S` counters instead of
//! one — reads get cheaper, reclamation gets proportionally dearer, the
//! classic EBR trade dialed by one knob.
//!
//! Correctness is unchanged from [`crate::EpochZone`]: the
//! read-increment-verify loop and parity selection are identical per
//! shard, and a parity is drained only when *all* its shards are zero, so
//! Lemmas 1–3 of the paper carry over shard-wise.

use crate::backoff::Backoff;
use crate::ordering::OrderingMode;
use rcuarray_analysis::atomic::{fence, AtomicU64, Ordering};

#[repr(align(64))]
#[derive(Debug, Default)]
struct Padded(AtomicU64);

/// A reader ticket naming the shard and parity it announced on.
#[must_use = "an un-unpinned ticket blocks writers forever"]
#[derive(Debug)]
pub struct ShardedTicket {
    shard: usize,
    idx: usize,
    epoch: u64,
}

impl ShardedTicket {
    /// The epoch this reader linearized at.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The parity this reader announced on.
    #[inline]
    pub fn parity(&self) -> usize {
        self.idx
    }

    /// The shard this reader announced on.
    #[inline]
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// The sharded TLS-free epoch zone (see [module docs](self)).
#[derive(Debug)]
pub struct ShardedEpochZone {
    global_epoch: Padded,
    /// `shards[s][p]` = readers announced on shard `s`, parity `p`.
    shards: Box<[[Padded; 2]]>,
    mode: OrderingMode,
}

impl ShardedEpochZone {
    /// A zone with `num_shards` counter pairs (rounded up to a power of
    /// two) and the paper's `SeqCst` protocol.
    pub fn new(num_shards: usize) -> Self {
        Self::with_mode(num_shards, OrderingMode::SeqCst)
    }

    /// As [`new`](Self::new) with an explicit [`OrderingMode`].
    pub fn with_mode(num_shards: usize, mode: OrderingMode) -> Self {
        let n = num_shards.max(1).next_power_of_two();
        ShardedEpochZone {
            global_epoch: Padded::default(),
            shards: (0..n)
                .map(|_| [Padded::default(), Padded::default()])
                .collect(),
            mode,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Current epoch value.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.global_epoch.0.load(self.mode.load())
    }

    /// Readers announced on `(shard, parity)`.
    #[inline]
    pub fn readers_on(&self, shard: usize, parity: usize) -> u64 {
        self.shards[shard][parity & 1].0.load(Ordering::Acquire)
    }

    /// Pick a shard without TLS: hash a stack-slot address. Same-thread
    /// calls land on the same shard (good locality); different threads'
    /// stacks differ by at least a page, so they spread.
    #[inline]
    fn home_shard(&self) -> usize {
        let probe = 0u8;
        let addr = &probe as *const u8 as usize;
        // Stacks differ in their high-ish bits; pages are 4 KiB+.
        (addr >> 12) & (self.shards.len() - 1)
    }

    /// Announce a read-side critical section on this call's home shard.
    #[inline]
    pub fn pin(&self) -> ShardedTicket {
        self.pin_at(self.home_shard())
    }

    /// Announce on an explicit shard (tests and deterministic callers).
    #[inline]
    pub fn pin_at(&self, shard: usize) -> ShardedTicket {
        let shard = shard & (self.shards.len() - 1);
        let mut backoff = Backoff::new();
        loop {
            let epoch = self.global_epoch.0.load(self.mode.load());
            let idx = (epoch & 1) as usize;
            self.shards[shard][idx].0.fetch_add(1, self.mode.rmw());
            if self.mode.needs_fence() {
                fence(Ordering::SeqCst);
            }
            if epoch == self.global_epoch.0.load(self.mode.load()) {
                return ShardedTicket { shard, idx, epoch };
            }
            self.shards[shard][idx].0.fetch_sub(1, self.mode.rmw());
            backoff.snooze();
        }
    }

    /// Retire a read-side critical section.
    #[inline]
    pub fn unpin(&self, ticket: ShardedTicket) {
        self.shards[ticket.shard][ticket.idx]
            .0
            .fetch_sub(1, self.mode.rmw());
    }

    /// Writer: advance the epoch, returning the old value.
    #[inline]
    pub fn advance(&self) -> u64 {
        self.global_epoch.0.fetch_add(1, Ordering::SeqCst)
    }

    /// Writer: wait until every shard of `epoch`'s parity drains.
    pub fn wait_for_readers(&self, epoch: u64) {
        let idx = (epoch & 1) as usize;
        for shard in self.shards.iter() {
            let mut backoff = Backoff::new();
            while shard[idx].0.load(Ordering::Acquire) != 0 {
                backoff.snooze();
            }
        }
    }

    /// Advance then drain; returns the old epoch.
    pub fn synchronize(&self) -> u64 {
        let old = self.advance();
        self.wait_for_readers(old);
        old
    }

    /// Force the epoch (overflow tests only).
    pub fn set_epoch_for_test(&self, epoch: u64) {
        self.global_epoch.0.store(epoch, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedEpochZone::new(1).num_shards(), 1);
        assert_eq!(ShardedEpochZone::new(3).num_shards(), 4);
        assert_eq!(ShardedEpochZone::new(8).num_shards(), 8);
        assert_eq!(ShardedEpochZone::new(0).num_shards(), 1);
    }

    #[test]
    fn pin_unpin_per_shard() {
        let z = ShardedEpochZone::new(4);
        let t = z.pin_at(2);
        assert_eq!(t.shard(), 2);
        assert_eq!(t.parity(), 0);
        assert_eq!(z.readers_on(2, 0), 1);
        assert_eq!(z.readers_on(0, 0), 0);
        z.unpin(t);
        assert_eq!(z.readers_on(2, 0), 0);
    }

    #[test]
    fn writer_waits_for_any_shard() {
        let z = Arc::new(ShardedEpochZone::new(4));
        let t = z.pin_at(3); // parity 0 on shard 3
        let done = Arc::new(AtomicBool::new(false));
        let z2 = Arc::clone(&z);
        let done2 = Arc::clone(&done);
        let writer = rcuarray_analysis::thread::spawn(move || {
            z2.synchronize();
            done2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!done.load(Ordering::SeqCst), "writer must scan all shards");
        z.unpin(t);
        writer.join().unwrap();
    }

    #[test]
    fn parity_preserved_across_overflow() {
        let z = ShardedEpochZone::new(2);
        z.set_epoch_for_test(u64::MAX);
        let t = z.pin_at(0);
        assert_eq!(t.parity(), 1);
        z.unpin(t);
        assert_eq!(z.advance(), u64::MAX);
        assert_eq!(z.epoch(), 0);
        let t2 = z.pin_at(1);
        assert_eq!(t2.parity(), 0);
        z.unpin(t2);
    }

    #[test]
    fn home_shard_is_stable_within_a_thread() {
        let z = ShardedEpochZone::new(8);
        let t1 = z.pin();
        let s1 = t1.shard();
        z.unpin(t1);
        let t2 = z.pin();
        // Same thread, same call depth pattern: overwhelmingly the same
        // shard (stack layout is deterministic within a run).
        assert_eq!(t2.shard(), s1);
        z.unpin(t2);
    }

    #[test]
    fn concurrent_readers_and_writer_drain_clean() {
        let z = Arc::new(ShardedEpochZone::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let z = &z;
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let t = z.pin();
                        z.unpin(t);
                    }
                });
            }
            let z2 = &z;
            let stop2 = &stop;
            s.spawn(move || {
                for _ in 0..500 {
                    z2.synchronize();
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
        for shard in 0..4 {
            assert_eq!(z.readers_on(shard, 0), 0);
            assert_eq!(z.readers_on(shard, 1), 0);
        }
    }

    #[test]
    fn acqrel_mode_works() {
        let z = ShardedEpochZone::with_mode(2, OrderingMode::AcqRelFence);
        let t = z.pin_at(1);
        z.unpin(t);
        z.synchronize();
        assert_eq!(z.epoch(), 1);
    }
}
