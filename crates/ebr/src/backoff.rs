//! Bounded exponential backoff for the writer's reader-drain loop.
//!
//! A writer waiting for `EpochReaders` to drain (Algorithm 1 line 7) spins;
//! unbounded tight spinning starves the very readers it waits for on
//! oversubscribed hosts (the simulation runs many more tasks than cores).
//! `Backoff` spins with `spin_loop` hints for a few rounds, then starts
//! yielding to the OS scheduler.

/// Exponential spin-then-yield backoff.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Spin rounds before the first yield: 2^SPIN_LIMIT spins max per round.
    const SPIN_LIMIT: u32 = 6;

    /// A fresh backoff at step zero.
    #[inline]
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Current step (monotonic until [`reset`](Self::reset)).
    #[inline]
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Whether the next [`snooze`](Self::snooze) will yield the thread
    /// rather than spin.
    #[inline]
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }

    /// Back off once: spin `2^step` times while below the spin limit, then
    /// yield to the scheduler.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            rcuarray_analysis::thread::yield_now();
        }
        self.step = self.step.saturating_add(1);
    }

    /// Start over (after observing progress).
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_spinning_then_yields() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..=Backoff::SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_yielding());
        // Yielding must not panic and step must not overflow.
        for _ in 0..100 {
            b.snooze();
        }
        assert!(b.is_yielding());
    }

    #[test]
    fn reset_returns_to_spinning() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        b.reset();
        assert_eq!(b.step(), 0);
        assert!(!b.is_yielding());
    }

    #[test]
    fn step_is_monotonic_and_saturates() {
        let mut b = Backoff::new();
        let mut last = b.step();
        for _ in 0..40 {
            b.snooze();
            assert!(b.step() >= last);
            last = b.step();
        }
    }
}
