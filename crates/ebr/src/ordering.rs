//! Memory-ordering modes for the `EpochReaders` protocol.
//!
//! The paper attributes EBRArray's poor read throughput to "the contention
//! and sequential consistency memory ordering of the Fetch-And-Add and
//! Fetch-And-Sub atomic operations on the EpochReaders counters" (§V-B).
//! To let the ablation benchmark quantify how much of the cost is the
//! *ordering* versus the *contention*, the zone's protocol ordering is a
//! runtime knob.

use rcuarray_analysis::atomic::Ordering;

/// Which memory orderings the read–increment–verify protocol uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingMode {
    /// The paper's configuration: every protocol operation is
    /// sequentially consistent. Correct on all architectures.
    #[default]
    SeqCst,
    /// Increments/decrements use `AcqRel` and the verification load uses
    /// `Acquire`, with an explicit `SeqCst` fence between the increment and
    /// the verification read.
    ///
    /// The fence preserves the store–load ordering the protocol needs (the
    /// reader's increment must be globally visible before its verification
    /// read), so this mode is still correct; it simply relocates the cost
    /// into one fence instead of three SC operations. On x86-64 the fence
    /// and the SC RMW compile to the same `lock`-prefixed instructions, so
    /// any measured difference isolates compiler-level effects.
    AcqRelFence,
    /// All protocol operations relaxed.
    ///
    /// **Measurement-only.** This under-synchronized mode exists to put a
    /// lower bound on the protocol's cost in the ordering ablation. It is
    /// not correct in general (a writer may miss a reader's announcement)
    /// and must never be used to protect real reclamation. The zone's
    /// debug assertions stay active under it.
    Relaxed,
}

impl OrderingMode {
    /// Ordering for the reader-counter increment (Algorithm 1 line 12).
    #[inline]
    pub fn rmw(self) -> Ordering {
        match self {
            OrderingMode::SeqCst => Ordering::SeqCst,
            OrderingMode::AcqRelFence => Ordering::AcqRel,
            OrderingMode::Relaxed => Ordering::Relaxed,
        }
    }

    /// Ordering for epoch loads (lines 10 and 13).
    #[inline]
    pub fn load(self) -> Ordering {
        match self {
            OrderingMode::SeqCst => Ordering::SeqCst,
            OrderingMode::AcqRelFence => Ordering::Acquire,
            OrderingMode::Relaxed => Ordering::Relaxed,
        }
    }

    /// Whether an explicit `SeqCst` fence is required between the increment
    /// and the verification load.
    #[inline]
    pub fn needs_fence(self) -> bool {
        matches!(self, OrderingMode::AcqRelFence)
    }

    /// Whether this mode is safe to protect actual memory reclamation.
    #[inline]
    pub fn is_sound(self) -> bool {
        !matches!(self, OrderingMode::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_seqcst() {
        assert_eq!(OrderingMode::default(), OrderingMode::SeqCst);
    }

    #[test]
    fn seqcst_maps_to_seqcst() {
        let m = OrderingMode::SeqCst;
        assert_eq!(m.rmw(), Ordering::SeqCst);
        assert_eq!(m.load(), Ordering::SeqCst);
        assert!(!m.needs_fence());
        assert!(m.is_sound());
    }

    #[test]
    fn acqrel_needs_fence_and_is_sound() {
        let m = OrderingMode::AcqRelFence;
        assert_eq!(m.rmw(), Ordering::AcqRel);
        assert_eq!(m.load(), Ordering::Acquire);
        assert!(m.needs_fence());
        assert!(m.is_sound());
    }

    #[test]
    fn relaxed_is_flagged_unsound() {
        let m = OrderingMode::Relaxed;
        assert_eq!(m.rmw(), Ordering::Relaxed);
        assert!(!m.is_sound());
        assert!(!m.needs_fence());
    }
}
