//! The epoch zone: `GlobalEpoch` plus the two collective `EpochReaders`
//! counters (paper Listing 1 and Algorithm 1).

use crate::backoff::Backoff;
use crate::ordering::OrderingMode;
use rcuarray_analysis::atomic::{fence, AtomicU64, Ordering};
use rcuarray_obs::LazyCounter;
use rcuarray_reclaim::{PressureConfig, Retired, StallPolicy};
use std::sync::Mutex;

// Registry-level telemetry (see DESIGN.md §7): process-wide totals
// across every zone. Per-zone counts stay in [`ZoneStats`]. Successful
// pins are deliberately *not* mirrored here — they are the per-read hot
// path; retries and advances are the contended/cold events the paper's
// Fig. 2 analysis needs.
static OBS_RETRIES: LazyCounter = LazyCounter::new(
    "rcuarray_ebr_pin_retries_total",
    "read-increment-verify pin attempts that lost an epoch advance and retried",
);
static OBS_ADVANCES: LazyCounter =
    LazyCounter::new("rcuarray_ebr_advances_total", "writer epoch advances");
static OBS_STALLED: LazyCounter = LazyCounter::new(
    "rcuarray_ebr_stalled_waits_total",
    "writer drains that hit the stall bound and evacuated instead of spinning",
);
static OBS_EVAC_DRAINS: LazyCounter = LazyCounter::new(
    "rcuarray_ebr_evacuations_drained_total",
    "evacuated retirements freed after both parity counters drained",
);
static OBS_GUARD_PANICS: LazyCounter = LazyCounter::new(
    "rcuarray_ebr_guard_panics_total",
    "epoch guards released while their thread was unwinding from a panic",
);

/// Pad to a cache line so the two reader counters and the epoch never
/// false-share — they are the hottest words in the whole system.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Padded(AtomicU64);

/// Counters exposed for inspection and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneStats {
    /// Successful reader pins.
    pub pins: u64,
    /// Pin attempts that lost the race with a concurrent epoch advance and
    /// had to undo-and-retry (Algorithm 1 line 17).
    pub retries: u64,
    /// Writer epoch advances.
    pub advances: u64,
    /// Writer drains that exhausted the stall bound and evacuated the
    /// retirement instead of spinning forever.
    pub stalled: u64,
    /// Evacuated retirements still waiting for both parity counters to
    /// drain.
    pub evac_pending: u64,
    /// Approximate bytes held by pending evacuations.
    pub evac_pending_bytes: u64,
    /// Guards released while their thread was unwinding from a panic.
    pub guard_panics: u64,
}

/// A retirement the writer could not free synchronously because a reader
/// on the old parity never drained. It is freed once *each* parity
/// counter has been observed at zero at some point after the entry's
/// epoch advance: every reader that could hold the unlinked object was
/// pinned before that advance and is counted on one of the two parities
/// continuously until it unpins, so two zero observations prove every
/// such reader has left. (Readers pinning *after* the advance — on
/// either parity — pinned after the unlink and cannot reach the object;
/// they only delay the zero observation, never break it.)
struct EvacEntry {
    retired: Retired,
    /// `need[p]`: parity counter `p` has not yet been observed at zero
    /// since this entry was created.
    need: [bool; 2],
}

impl std::fmt::Debug for EvacEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvacEntry")
            .field("bytes", &self.retired.bytes())
            .field("need", &self.need)
            .finish()
    }
}

/// A TLS-free EBR zone: one `GlobalEpoch` and two parity-indexed
/// `EpochReaders` counters.
///
/// This corresponds to the `GlobalEpoch`/`EpochReaders` fields of the
/// paper's privatized `RCUArrayMetaData` (Listing 1): RCUArray embeds one
/// zone per locale. The zone knows nothing about *what* it protects; it
/// only implements the reader announcement protocol and the writer's
/// drain-and-advance. Pair it with an `AtomicPtr` (see
/// [`crate::RcuCell`]) or any other single-writer published structure.
#[derive(Debug)]
pub struct EpochZone {
    global_epoch: Padded,
    readers: [Padded; 2],
    mode: OrderingMode,
    pins: Padded,
    retries: Padded,
    advances: Padded,
    // --- robustness state (DESIGN.md §9), all cold-path ---
    /// Snooze bound for [`try_wait_for_readers`](Self::try_wait_for_readers)
    /// (`u64::MAX` = wait forever, the classic protocol).
    stall_spins: AtomicU64,
    stall_lag: AtomicU64,
    /// [`PressureConfig`] fields (`u64::MAX` = unbounded).
    cap_bytes: AtomicU64,
    watermark_bytes: AtomicU64,
    /// Retirements evacuated by stalled drains, waiting for both parity
    /// counters to drain. Mirrored into `evac_count`/`evac_bytes` so
    /// stats never take the lock.
    evac: Mutex<Vec<EvacEntry>>,
    evac_count: AtomicU64,
    evac_bytes: AtomicU64,
    retires: AtomicU64,
    stalled: AtomicU64,
    guard_panics: AtomicU64,
}

/// Proof that a reader is announced on a parity counter. Must be returned
/// to [`EpochZone::unpin`]; dropping it without unpinning would wedge every
/// future writer. Prefer the RAII [`crate::EpochGuard`].
#[must_use = "an un-unpinned ticket blocks writers forever"]
#[derive(Debug)]
pub struct ReadTicket {
    /// Parity index the reader announced on.
    pub(crate) idx: usize,
    /// The epoch the reader observed and verified.
    pub(crate) epoch: u64,
}

impl ReadTicket {
    /// The epoch this reader linearized at.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The parity counter this reader is recorded on.
    #[inline]
    pub fn parity(&self) -> usize {
        self.idx
    }
}

impl Default for EpochZone {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochZone {
    /// A zone at epoch 0 with the paper's `SeqCst` protocol ordering.
    pub fn new() -> Self {
        Self::with_mode(OrderingMode::SeqCst)
    }

    /// A zone using a specific [`OrderingMode`] (for the ablation bench).
    pub fn with_mode(mode: OrderingMode) -> Self {
        EpochZone {
            global_epoch: Padded::default(),
            readers: [Padded::default(), Padded::default()],
            mode,
            pins: Padded::default(),
            retries: Padded::default(),
            advances: Padded::default(),
            stall_spins: AtomicU64::new(u64::MAX),
            stall_lag: AtomicU64::new(u64::MAX),
            cap_bytes: AtomicU64::new(u64::MAX),
            watermark_bytes: AtomicU64::new(u64::MAX),
            evac: Mutex::new(Vec::new()),
            evac_count: AtomicU64::new(0),
            evac_bytes: AtomicU64::new(0),
            retires: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
            guard_panics: AtomicU64::new(0),
        }
    }

    /// Install a stall policy. `patience` bounds how many backoff snoozes
    /// a writer's drain spends on a parity counter before declaring the
    /// reader stalled and *evacuating* the retirement instead of spinning
    /// forever; [`StallPolicy::disabled`] (the default) restores the
    /// classic wait-forever protocol.
    pub fn set_stall_policy(&self, policy: StallPolicy) {
        self.stall_spins.store(policy.patience, Ordering::SeqCst);
        self.stall_lag.store(policy.lag_epochs, Ordering::SeqCst);
    }

    /// The currently installed stall policy.
    pub fn stall_policy(&self) -> StallPolicy {
        StallPolicy {
            lag_epochs: self.stall_lag.load(Ordering::SeqCst),
            patience: self.stall_spins.load(Ordering::SeqCst),
        }
    }

    /// Install a backlog byte budget over the evacuation list;
    /// [`PressureConfig::unbounded`] (the default) disables it.
    pub fn set_pressure(&self, pressure: PressureConfig) {
        pressure.validate();
        self.cap_bytes
            .store(pressure.max_backlog_bytes, Ordering::SeqCst);
        self.watermark_bytes
            .store(pressure.high_watermark, Ordering::SeqCst);
    }

    /// The currently installed backlog budget.
    pub fn pressure_config(&self) -> PressureConfig {
        PressureConfig {
            max_backlog_bytes: self.cap_bytes.load(Ordering::SeqCst),
            high_watermark: self.watermark_bytes.load(Ordering::SeqCst),
        }
    }

    /// The protocol ordering in use.
    #[inline]
    pub fn mode(&self) -> OrderingMode {
        self.mode
    }

    /// Current epoch value.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.global_epoch.0.load(self.mode.load())
    }

    /// Number of announced readers on a parity counter (0 or 1).
    #[inline]
    pub fn readers_on(&self, parity: usize) -> u64 {
        self.readers[parity & 1].0.load(Ordering::Acquire)
    }

    /// Force the epoch to an arbitrary value. Exists so tests can start the
    /// zone one step from integer overflow and exercise the wrap-around of
    /// paper Lemma 2; not part of the protocol.
    pub fn set_epoch_for_test(&self, epoch: u64) {
        self.global_epoch.0.store(epoch, Ordering::SeqCst);
    }

    /// Announce a read-side critical section: Algorithm 1 lines 9–17.
    ///
    /// Loops: read the epoch `e`, increment `EpochReaders[e % 2]`, re-read
    /// the epoch. On a mismatch the reader "would see that e ≠ e′ and would
    /// undo the operation and loop again"; on a match it has linearized.
    #[inline]
    pub fn pin(&self) -> ReadTicket {
        let mut backoff = Backoff::new();
        loop {
            let epoch = self.global_epoch.0.load(self.mode.load());
            let idx = (epoch & 1) as usize;
            self.readers[idx].0.fetch_add(1, self.mode.rmw());
            if self.mode.needs_fence() {
                // The increment must be globally visible before the
                // verification read, or a concurrent writer could both miss
                // this reader and have this reader miss its advance.
                fence(Ordering::SeqCst);
            }
            if epoch == self.global_epoch.0.load(self.mode.load()) {
                // Linearized: any writer advancing past `epoch` is now
                // obliged to wait for this parity counter to drain.
                self.pins.0.fetch_add(1, Ordering::Relaxed);
                return ReadTicket { idx, epoch };
            }
            // Lost the race with a writer; undo and retry.
            self.readers[idx].0.fetch_sub(1, self.mode.rmw());
            self.retries.0.fetch_add(1, Ordering::Relaxed);
            OBS_RETRIES.inc();
            backoff.snooze();
        }
    }

    /// Retire a read-side critical section (Algorithm 1 line 15).
    #[inline]
    pub fn unpin(&self, ticket: ReadTicket) {
        // `Release` at minimum: everything the reader did inside the
        // critical section must happen-before a writer observing the drain.
        let ord = match self.mode.rmw() {
            Ordering::Relaxed => Ordering::Relaxed,
            _ => self.mode.rmw(),
        };
        self.readers[ticket.idx].0.fetch_sub(1, ord);
    }

    /// Writer step 1 (Algorithm 1 line 5): advance the epoch from `e` to
    /// `e + 1` (wrapping), returning the *old* epoch `e`.
    ///
    /// Must only be called by the single writer (externally serialized by
    /// the structure's write lock, per the paper's footnote 3).
    #[inline]
    pub fn advance(&self) -> u64 {
        self.advances.0.fetch_add(1, Ordering::Relaxed);
        OBS_ADVANCES.inc();
        // `fetch_add` wraps on overflow, which is exactly the behaviour
        // Lemma 2 proves safe: parity is preserved across the wrap.
        self.global_epoch.0.fetch_add(1, Ordering::SeqCst)
    }

    /// Writer step 2 (Algorithm 1 lines 6–7): wait until every reader that
    /// recorded on `epoch`'s parity has evacuated.
    #[inline]
    pub fn wait_for_readers(&self, epoch: u64) {
        let idx = (epoch & 1) as usize;
        let mut backoff = Backoff::new();
        while self.readers[idx].0.load(Ordering::Acquire) != 0 {
            backoff.snooze();
        }
    }

    /// Bounded [`wait_for_readers`](Self::wait_for_readers): give up after
    /// the zone's stall bound in backoff snoozes (`u64::MAX` = never give
    /// up). Returns whether the parity counter drained.
    #[inline]
    pub fn try_wait_for_readers(&self, epoch: u64) -> bool {
        let idx = (epoch & 1) as usize;
        let bound = self.stall_spins.load(Ordering::Relaxed);
        let mut backoff = Backoff::new();
        let mut snoozes = 0u64;
        while self.readers[idx].0.load(Ordering::Acquire) != 0 {
            if snoozes >= bound {
                return false;
            }
            backoff.snooze();
            snoozes += 1;
        }
        true
    }

    /// Combined writer barrier: advance then drain; returns the old epoch.
    /// After this returns, memory published *before* the matching
    /// publication store is unreachable by all current and future readers.
    #[inline]
    pub fn synchronize(&self) -> u64 {
        let old = self.advance();
        self.wait_for_readers(old);
        old
    }

    /// The robust writer path behind `Reclaim::retire`: advance, drain
    /// within the stall bound, and free synchronously — or, when a reader
    /// on the old parity never drains, *evacuate* the retirement so the
    /// writer makes progress and the memory is freed later, once both
    /// parity counters have been observed empty (see [`EvacEntry`]).
    ///
    /// With the default (disabled) stall policy this is exactly the
    /// classic synchronous retire.
    pub fn retire_robust(&self, retired: Retired) {
        self.retires.fetch_add(1, Ordering::Relaxed);
        let old = self.advance();
        if self.try_wait_for_readers(old) {
            retired.run();
            // Opportunistic: a drained parity may also release older
            // evacuations.
            if self.evac_count.load(Ordering::Relaxed) > 0 {
                self.try_drain_evac();
            }
            return;
        }
        // Stalled: park the retirement on the evacuation list instead of
        // spinning forever behind a dead reader.
        self.stalled.fetch_add(1, Ordering::Relaxed);
        OBS_STALLED.inc();
        let bytes = retired.bytes() as u64;
        self.evac.lock().unwrap().push(EvacEntry {
            retired,
            need: [true, true],
        });
        self.evac_count.fetch_add(1, Ordering::Relaxed);
        self.evac_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Free every evacuated retirement whose parity obligations are now
    /// met, recording fresh zero observations on the rest. Returns how
    /// many entries were freed.
    pub fn try_drain_evac(&self) -> usize {
        let mut evac = self.evac.lock().unwrap();
        if evac.is_empty() {
            return 0;
        }
        // One observation of each counter serves every entry: "zero since
        // the entry's advance" is implied by "zero now" because entries
        // were pushed before this lock acquisition.
        let zero = [self.readers_on(0) == 0, self.readers_on(1) == 0];
        let mut freed = 0usize;
        let mut freed_bytes = 0u64;
        let mut kept = Vec::with_capacity(evac.len());
        for mut e in evac.drain(..) {
            for (p, &z) in zero.iter().enumerate() {
                if z {
                    e.need[p] = false;
                }
            }
            if e.need == [false, false] {
                freed += 1;
                freed_bytes += e.retired.bytes() as u64;
                e.retired.run();
            } else {
                kept.push(e);
            }
        }
        *evac = kept;
        if freed > 0 {
            self.evac_count.fetch_sub(freed as u64, Ordering::Relaxed);
            self.evac_bytes.fetch_sub(freed_bytes, Ordering::Relaxed);
            OBS_EVAC_DRAINS.add(freed as u64);
        }
        freed
    }

    /// Record a guard released during a panic unwind (called by
    /// [`crate::EpochGuard`]'s `Drop`).
    pub(crate) fn note_guard_panic(&self) {
        self.guard_panics.fetch_add(1, Ordering::Relaxed);
        OBS_GUARD_PANICS.inc();
    }

    /// Snapshot of the zone's instrumentation counters.
    pub fn stats(&self) -> ZoneStats {
        ZoneStats {
            pins: self.pins.0.load(Ordering::Relaxed),
            retries: self.retries.0.load(Ordering::Relaxed),
            advances: self.advances.0.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
            evac_pending: self.evac_count.load(Ordering::Relaxed),
            evac_pending_bytes: self.evac_bytes.load(Ordering::Relaxed),
            guard_panics: self.guard_panics.load(Ordering::Relaxed),
        }
    }

    /// Total `retire_robust` calls (the trait-level `retired` stat).
    pub(crate) fn retires(&self) -> u64 {
        self.retires.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn pin_records_on_epoch_parity() {
        let z = EpochZone::new();
        let t = z.pin();
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.parity(), 0);
        assert_eq!(z.readers_on(0), 1);
        assert_eq!(z.readers_on(1), 0);
        z.unpin(t);
        assert_eq!(z.readers_on(0), 0);
    }

    #[test]
    fn advance_returns_old_epoch_and_flips_parity() {
        let z = EpochZone::new();
        assert_eq!(z.advance(), 0);
        assert_eq!(z.epoch(), 1);
        let t = z.pin();
        assert_eq!(t.parity(), 1);
        z.unpin(t);
    }

    #[test]
    fn wait_for_readers_returns_immediately_when_empty() {
        let z = EpochZone::new();
        z.wait_for_readers(0);
        z.wait_for_readers(1);
    }

    #[test]
    fn writer_waits_for_old_parity_reader() {
        let z = Arc::new(EpochZone::new());
        let t = z.pin(); // parity 0 at epoch 0
        let done = Arc::new(AtomicBool::new(false));

        let z2 = Arc::clone(&z);
        let done2 = Arc::clone(&done);
        let writer = rcuarray_analysis::thread::spawn(move || {
            let old = z2.advance();
            z2.wait_for_readers(old);
            done2.store(true, Ordering::SeqCst);
        });

        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !done.load(Ordering::SeqCst),
            "writer must block while a parity-0 reader is pinned"
        );
        z.unpin(t);
        writer.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn writer_does_not_wait_for_new_parity_reader() {
        let z = EpochZone::new();
        let old = z.advance(); // epoch now 1
        let t = z.pin(); // parity 1: a *new* reader
        assert_eq!(t.parity(), 1);
        // Draining parity 0 must not be blocked by the parity-1 reader.
        z.wait_for_readers(old);
        z.unpin(t);
    }

    #[test]
    fn pin_retries_when_epoch_moves() {
        // Simulate the race: force a retry by advancing between operations
        // is hard deterministically; instead hammer pins against advances
        // and check the accounting stays consistent.
        let z = Arc::new(EpochZone::new());
        let stop = Arc::new(AtomicBool::new(false));
        let z2 = Arc::clone(&z);
        let stop2 = Arc::clone(&stop);
        let writer = rcuarray_analysis::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                let old = z2.advance();
                z2.wait_for_readers(old);
            }
        });
        for _ in 0..10_000 {
            let t = z.pin();
            // While pinned, our parity counter must be nonzero.
            assert!(z.readers_on(t.parity()) >= 1);
            z.unpin(t);
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert_eq!(z.readers_on(0), 0);
        assert_eq!(z.readers_on(1), 0);
        assert_eq!(z.stats().pins, 10_000);
    }

    #[test]
    fn epoch_overflow_preserves_parity() {
        // Paper Lemma 2: at the wrap from max to 0, parity still alternates.
        let z = EpochZone::new();
        z.set_epoch_for_test(u64::MAX); // parity of MAX is 1
        let t = z.pin();
        assert_eq!(t.parity(), 1);
        z.unpin(t);
        let old = z.advance();
        assert_eq!(old, u64::MAX);
        assert_eq!(z.epoch(), 0); // wrapped
        let t2 = z.pin();
        assert_eq!(t2.parity(), 0, "post-wrap epoch 0 must use parity 0");
        z.unpin(t2);
    }

    #[test]
    fn synchronize_is_advance_plus_drain() {
        let z = EpochZone::new();
        let old = z.synchronize();
        assert_eq!(old, 0);
        assert_eq!(z.epoch(), 1);
        assert_eq!(z.stats().advances, 1);
    }

    #[test]
    fn stats_count_pins_and_advances() {
        let z = EpochZone::new();
        for _ in 0..5 {
            let t = z.pin();
            z.unpin(t);
        }
        z.synchronize();
        let s = z.stats();
        assert_eq!(s.pins, 5);
        assert_eq!(s.advances, 1);
    }

    #[test]
    fn acqrel_mode_protocol_works() {
        let z = EpochZone::with_mode(OrderingMode::AcqRelFence);
        let t = z.pin();
        assert_eq!(z.readers_on(0), 1);
        z.unpin(t);
        z.synchronize();
        assert_eq!(z.epoch(), 1);
    }

    #[test]
    fn many_concurrent_readers_drain_to_zero() {
        let z = Arc::new(EpochZone::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let z = &z;
                s.spawn(move || {
                    for _ in 0..1000 {
                        let t = z.pin();
                        z.unpin(t);
                    }
                });
            }
        });
        assert_eq!(z.readers_on(0) + z.readers_on(1), 0);
        assert_eq!(z.stats().pins, 8000);
    }
}
