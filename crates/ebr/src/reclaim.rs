//! The unified [`Reclaim`] trait implemented natively on [`EpochZone`]:
//! the TLS-free EBR protocol *is* a reclamation scheme, no adapter
//! needed.
//!
//! * Guard = [`EpochGuard`]: the read–increment–verify pin, released
//!   (RAII) even on panic.
//! * Retire = synchronous drain: advance the epoch, wait for the old
//!   parity counter to empty, free immediately — EBR never accumulates a
//!   backlog, which is why its pending/lag stats are structurally zero.
//! * Quiesce = no-op (nothing is ever deferred).

use crate::epoch::EpochZone;
use crate::guard::EpochGuard;
use rcuarray_reclaim::{Reclaim, ReclaimStats, Retired};

impl Reclaim for EpochZone {
    type Guard<'a> = EpochGuard<'a>;

    #[inline]
    fn read_lock(&self) -> EpochGuard<'_> {
        EpochGuard::pin(self)
    }

    fn retire(&self, retired: Retired) {
        let old_epoch = self.advance();
        self.wait_for_readers(old_epoch);
        retired.run();
    }

    #[inline]
    fn quiesce(&self) -> usize {
        0
    }

    #[inline]
    fn guards_reads(&self) -> bool {
        true
    }

    #[inline]
    fn name(&self) -> &'static str {
        "ebr"
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        let z = self.stats();
        ReclaimStats {
            guards: z.pins,
            guard_retries: z.retries,
            advances: z.advances,
            // Synchronous: retired == reclaimed == advances, never pending.
            retired: z.advances,
            reclaimed: z.advances,
            ..ReclaimStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn retire_is_synchronous() {
        let zone = EpochZone::new();
        let freed = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&freed);
        zone.retire(Retired::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(freed.load(Ordering::SeqCst), 1, "EBR frees at retire");
        assert_eq!(zone.quiesce(), 0);
        let s = zone.reclaim_stats();
        assert_eq!(s.advances, 1);
        assert_eq!(s.pending, 0, "EBR never has a backlog");
    }

    #[test]
    fn guard_blocks_retirement_until_dropped() {
        let zone = Arc::new(EpochZone::new());
        let freed = Arc::new(AtomicBool::new(false));
        let guard = zone.read_lock();
        std::thread::scope(|s| {
            let z = Arc::clone(&zone);
            let f = Arc::clone(&freed);
            let writer = s.spawn(move || {
                z.retire(Retired::new(move || f.store(true, Ordering::SeqCst)));
            });
            std::thread::sleep(std::time::Duration::from_millis(40));
            assert!(
                !freed.load(Ordering::SeqCst),
                "retire must wait for the pinned reader"
            );
            drop(guard);
            writer.join().unwrap();
        });
        assert!(freed.load(Ordering::SeqCst));
    }

    #[test]
    fn stats_surface_pins_and_retries() {
        let zone = EpochZone::new();
        for _ in 0..5 {
            let _g = zone.read_lock();
        }
        let s = zone.reclaim_stats();
        assert_eq!(s.guards, 5);
        assert!(zone.guards_reads());
        assert_eq!(zone.name(), "ebr");
        assert!(!s.domain_wide, "zones are per-locale; stats sum");
    }
}
