//! The unified [`Reclaim`] trait implemented natively on [`EpochZone`]:
//! the TLS-free EBR protocol *is* a reclamation scheme, no adapter
//! needed.
//!
//! * Guard = [`EpochGuard`]: the read–increment–verify pin, released
//!   (RAII) even on panic.
//! * Retire = synchronous drain: advance the epoch, wait for the old
//!   parity counter to empty, free immediately — EBR never accumulates a
//!   backlog, which is why its pending/lag stats are structurally zero
//!   under the default (disabled) [`StallPolicy`]. With a stall bound
//!   installed the drain is bounded and a stalled reader flips the
//!   writer into *evacuation*: the retirement parks on the zone's
//!   evacuation list (so the writer progresses) and frees once both
//!   parity counters have been observed empty.
//! * Quiesce = drain the evacuation list (0 with nothing evacuated).
//!
//! [`StallPolicy`]: rcuarray_reclaim::StallPolicy

use crate::epoch::EpochZone;
use crate::guard::EpochGuard;
use rcuarray_reclaim::{PressureConfig, Reclaim, ReclaimStats, Retired};

impl Reclaim for EpochZone {
    type Guard<'a> = EpochGuard<'a>;

    #[inline]
    fn read_lock(&self) -> EpochGuard<'_> {
        EpochGuard::pin(self)
    }

    fn retire(&self, retired: Retired) {
        self.retire_robust(retired);
    }

    #[inline]
    fn quiesce(&self) -> usize {
        self.try_drain_evac()
    }

    #[inline]
    fn guards_reads(&self) -> bool {
        true
    }

    #[inline]
    fn name(&self) -> &'static str {
        "ebr"
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        let z = self.stats();
        let retired = self.retires();
        ReclaimStats {
            guards: z.pins,
            guard_retries: z.retries,
            advances: z.advances,
            // Synchronous except for evacuations: everything retired has
            // been freed unless it is parked on the evacuation list.
            retired,
            reclaimed: retired.saturating_sub(z.evac_pending),
            pending: z.evac_pending,
            pending_bytes: z.evac_pending_bytes,
            stalled: z.stalled,
            guard_panics: z.guard_panics,
            ..ReclaimStats::default()
        }
    }

    #[inline]
    fn pressure(&self) -> PressureConfig {
        self.pressure_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn retire_is_synchronous() {
        let zone = EpochZone::new();
        let freed = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&freed);
        zone.retire(Retired::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(freed.load(Ordering::SeqCst), 1, "EBR frees at retire");
        assert_eq!(zone.quiesce(), 0);
        let s = zone.reclaim_stats();
        assert_eq!(s.advances, 1);
        assert_eq!(s.pending, 0, "EBR never has a backlog");
    }

    #[test]
    fn guard_blocks_retirement_until_dropped() {
        let zone = Arc::new(EpochZone::new());
        let freed = Arc::new(AtomicBool::new(false));
        let guard = zone.read_lock();
        std::thread::scope(|s| {
            let z = Arc::clone(&zone);
            let f = Arc::clone(&freed);
            let writer = s.spawn(move || {
                z.retire(Retired::new(move || f.store(true, Ordering::SeqCst)));
            });
            std::thread::sleep(std::time::Duration::from_millis(40));
            assert!(
                !freed.load(Ordering::SeqCst),
                "retire must wait for the pinned reader"
            );
            drop(guard);
            writer.join().unwrap();
        });
        assert!(freed.load(Ordering::SeqCst));
    }

    #[test]
    fn stalled_reader_triggers_evacuation_and_the_writer_progresses() {
        let zone = EpochZone::new();
        zone.set_stall_policy(rcuarray_reclaim::StallPolicy::after(1, 64));
        let guard = zone.read_lock(); // pinned "forever" on parity 0
        let freed = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&freed);
        // The classic protocol would deadlock here (same thread holds the
        // pin); the bounded drain evacuates instead.
        zone.retire(Retired::with_bytes(128, move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(
            freed.load(Ordering::SeqCst),
            0,
            "cannot free under a live pin"
        );
        let s = zone.reclaim_stats();
        assert_eq!(s.pending, 1);
        assert_eq!(s.pending_bytes, 128);
        assert_eq!(s.stalled, 1);
        assert_eq!(zone.quiesce(), 0, "still gated by the pin");
        drop(guard);
        assert_eq!(zone.quiesce(), 1, "both parities drained: evacuation frees");
        assert_eq!(freed.load(Ordering::SeqCst), 1);
        let s = zone.reclaim_stats();
        assert_eq!(s.pending, 0);
        assert_eq!(s.pending_bytes, 0);
        assert_eq!(s.reclaimed, s.retired);
    }

    #[test]
    fn ebr_backpressure_bounds_evacuation_memory() {
        let zone = EpochZone::new();
        zone.set_stall_policy(rcuarray_reclaim::StallPolicy::after(1, 16));
        zone.set_pressure(rcuarray_reclaim::PressureConfig {
            max_backlog_bytes: 256,
            high_watermark: 128,
        });
        let guard = zone.read_lock();
        // First retire may overshoot the cap by its own size (slack).
        assert!(zone.try_retire(Retired::with_bytes(256, || {})).is_ok());
        // At the cap with an undrainable backlog: graceful rejection, the
        // object comes back to the caller.
        let err = zone
            .try_retire(Retired::with_bytes(64, || {}))
            .expect_err("evacuation backlog at the cap must reject");
        assert_eq!(err.pending_bytes, 256);
        err.into_retired().run();
        // The stalled reader recovers: backpressure lifts.
        drop(guard);
        assert!(zone.try_retire(Retired::with_bytes(64, || {})).is_ok());
        zone.quiesce();
        assert_eq!(zone.reclaim_stats().pending, 0);
    }

    #[test]
    fn stats_surface_pins_and_retries() {
        let zone = EpochZone::new();
        for _ in 0..5 {
            let _g = zone.read_lock();
        }
        let s = zone.reclaim_stats();
        assert_eq!(s.guards, 5);
        assert!(zone.guards_reads());
        assert_eq!(zone.name(), "ebr");
        assert!(!s.domain_wide, "zones are per-locale; stats sum");
    }
}
