//! A single RCU-protected value: the paper's `RCU_Read`/`RCU_Write`
//! (Algorithm 1) packaged as a reusable cell.
//!
//! `RcuCell<T>` owns an [`EpochZone`] and an atomic pointer to the current
//! immutable *snapshot* of a `T`. Readers run closures against the snapshot
//! under the zone's pin protocol; writers clone-update-publish under an
//! internal mutex (the paper requires "the WriteLock should be acquired
//! prior to invoking RCU_Write", footnote 3 — here the cell carries its own
//! lock so it is safe by construction; distributed structures that need a
//! *cluster-wide* lock, like RCUArray, use [`EpochZone`] directly).

use crate::epoch::{EpochZone, ZoneStats};
use crate::ordering::OrderingMode;
use rcuarray_analysis::atomic::{AtomicPtr, Ordering};
use rcuarray_analysis::sync::Mutex;

/// An RCU-protected value with TLS-free EBR reclamation.
pub struct RcuCell<T> {
    zone: EpochZone,
    ptr: AtomicPtr<T>,
    write_lock: Mutex<()>,
}

// SAFETY: readers on any thread dereference the snapshot (`&T`, needs
// `T: Sync`), and writers move `T`s in and drop them on whatever thread
// runs the write (needs `T: Send`); the raw pointer itself is only freed
// after the epoch grace period proves no reader can still hold it.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// A cell holding `value`, using the paper's `SeqCst` protocol.
    pub fn new(value: T) -> Self {
        Self::with_mode(value, OrderingMode::SeqCst)
    }

    /// A cell with an explicit protocol [`OrderingMode`].
    ///
    /// # Panics
    /// Panics if `mode` is not sound for reclamation
    /// ([`OrderingMode::is_sound`]); the relaxed mode is measurement-only.
    pub fn with_mode(value: T, mode: OrderingMode) -> Self {
        assert!(
            mode.is_sound(),
            "OrderingMode::Relaxed cannot protect real reclamation"
        );
        RcuCell {
            zone: EpochZone::with_mode(mode),
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            write_lock: Mutex::new(()),
        }
    }

    /// The cell's epoch zone (for instrumentation).
    #[inline]
    pub fn zone(&self) -> &EpochZone {
        &self.zone
    }

    /// Zone instrumentation counters.
    pub fn stats(&self) -> ZoneStats {
        self.zone.stats()
    }

    /// `RCU_Read` (Algorithm 1 lines 9–16): run `f` against the current
    /// snapshot inside a read-side critical section and return its result.
    ///
    /// The reference passed to `f` is valid only for the duration of the
    /// call; the borrow checker enforces that nothing outlives it.
    #[inline]
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let ticket = self.zone.pin();
        // The snapshot pointer is loaded only *after* the pin verified, so
        // the snapshot we dereference is one a concurrent writer is
        // obligated to keep alive until we unpin (paper Lemma 3).
        let snap = self.ptr.load(Ordering::Acquire);
        // SAFETY: `snap` was published by `write`/`new` and cannot be
        // reclaimed while we hold the ticket: any writer that unlinked it
        // must first drain our parity counter.
        let ret = f(unsafe { &*snap });
        self.zone.unpin(ticket);
        ret
    }

    /// Clone of the current value (convenience over [`read`](Self::read)).
    #[inline]
    pub fn read_cloned(&self) -> T
    where
        T: Clone,
    {
        self.read(T::clone)
    }

    /// `RCU_Write` (Algorithm 1 lines 1–8): derive a new snapshot from the
    /// old with `f`, publish it, wait for readers of the old snapshot to
    /// evacuate, then reclaim the old snapshot.
    ///
    /// Writers are serialized by an internal lock; readers never block.
    pub fn write(&self, f: impl FnOnce(&T) -> T) {
        let _wl = self.write_lock.lock();
        // Single writer: plain load is race-free for the pointer value.
        let old_ptr = self.ptr.load(Ordering::Acquire);
        // SAFETY: we hold the write lock; `old_ptr` stays published (and
        // thus alive) while we build its replacement.
        let new = Box::into_raw(Box::new(f(unsafe { &*old_ptr })));
        // Publish first (line 4) so the new snapshot "will become
        // immediately visible", then advance the epoch (line 5).
        self.ptr.store(new, Ordering::Release);
        let old_epoch = self.zone.advance();
        self.zone.wait_for_readers(old_epoch);
        // SAFETY: the old snapshot is unpublished and every reader that
        // could hold it announced on `old_epoch`'s parity, which has
        // drained. No new reader can acquire `old_ptr`.
        drop(unsafe { Box::from_raw(old_ptr) });
    }

    /// Replace the value outright, reclaiming the old snapshot safely.
    pub fn replace(&self, value: T) {
        let mut value = Some(value);
        self.write(|_| value.take().expect("write closure runs exactly once"));
    }

    /// Consume the cell and return the current value.
    pub fn into_inner(self) -> T {
        // Field moves out of `self` are blocked by `Drop`; steal the
        // pointer and forget `self` instead.
        let ptr = self.ptr.load(Ordering::Acquire);
        std::mem::forget(self);
        // SAFETY: `self` is forgotten, so `Drop` will not double-free; the
        // pointer is the uniquely-owned current snapshot.
        *unsafe { Box::from_raw(ptr) }
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        let ptr = *self.ptr.get_mut();
        // SAFETY: exclusive access (`&mut self`); no readers can exist.
        drop(unsafe { Box::from_raw(ptr) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.read(|v| f.debug_struct("RcuCell").field("value", v).finish())
    }
}

impl<T: Default> Default for RcuCell<T> {
    fn default() -> Self {
        RcuCell::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::{AtomicBool, AtomicUsize};
    use std::sync::Arc;

    #[test]
    fn read_sees_initial_value() {
        let c = RcuCell::new(41);
        assert_eq!(c.read(|v| *v + 1), 42);
    }

    #[test]
    fn write_clone_update_publishes() {
        let c = RcuCell::new(vec![1]);
        c.write(|old| {
            let mut v = old.clone();
            v.push(2);
            v
        });
        assert_eq!(c.read_cloned(), vec![1, 2]);
    }

    #[test]
    fn replace_swaps_value() {
        let c = RcuCell::new("old".to_string());
        c.replace("new".to_string());
        assert_eq!(c.read_cloned(), "new");
    }

    #[test]
    fn into_inner_returns_current() {
        let c = RcuCell::new(7u32);
        c.replace(9);
        assert_eq!(c.into_inner(), 9);
    }

    #[test]
    fn drop_reclaims_value() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let c = RcuCell::new(Canary(Arc::clone(&drops)));
            c.replace(Canary(Arc::clone(&drops))); // old snapshot freed now
            assert_eq!(drops.load(Ordering::SeqCst), 1);
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            2,
            "drop frees the last snapshot"
        );
    }

    #[test]
    fn writes_are_serialized_and_none_lost() {
        let c = Arc::new(RcuCell::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..250 {
                        c.write(|old| old + 1);
                    }
                });
            }
        });
        assert_eq!(c.read(|v| *v), 1000);
    }

    #[test]
    fn readers_always_see_a_consistent_snapshot() {
        // Snapshot = (a, b) with invariant a + b == 100. Writers preserve
        // it; torn reads would violate it.
        let c = Arc::new(RcuCell::new((100u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let c = &c;
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let ok = c.read(|&(a, b)| a + b == 100);
                        assert!(ok, "torn snapshot observed");
                    }
                });
            }
            let c2 = &c;
            let stop2 = &stop;
            s.spawn(move || {
                for i in 0..2000 {
                    c2.write(|&(a, _)| {
                        let a2 = (a + 1) % 101;
                        (a2, 100 - a2)
                    });
                    if i % 256 == 0 {
                        rcuarray_analysis::thread::yield_now();
                    }
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
    }

    #[test]
    fn use_after_write_detects_no_stale_canary() {
        // Value carries a "poisoned" flag the writer sets on the *old*
        // value right before freeing would be unsound — instead we verify
        // the version only ever increases as seen by readers.
        let c = Arc::new(RcuCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let c = &c;
                let stop = &stop;
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = c.read(|v| *v);
                        assert!(v >= last, "snapshot went backwards");
                        last = v;
                    }
                });
            }
            let c2 = &c;
            let stop2 = &stop;
            s.spawn(move || {
                for _ in 0..3000 {
                    c2.write(|v| v + 1);
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(c.read(|v| *v), 3000);
    }

    #[test]
    #[should_panic(expected = "cannot protect real reclamation")]
    fn relaxed_mode_rejected() {
        let _ = RcuCell::with_mode(0u8, OrderingMode::Relaxed);
    }

    #[test]
    fn acqrel_mode_cell_works() {
        let c = RcuCell::with_mode(5u32, OrderingMode::AcqRelFence);
        c.write(|v| v * 2);
        assert_eq!(c.read(|v| *v), 10);
    }

    #[test]
    fn debug_and_default() {
        let c: RcuCell<u8> = RcuCell::default();
        assert_eq!(format!("{c:?}"), "RcuCell { value: 0 }");
    }

    #[test]
    fn stats_reflect_traffic() {
        let c = RcuCell::new(1);
        for _ in 0..3 {
            c.read(|_| ());
        }
        c.write(|v| v + 1);
        let s = c.stats();
        assert_eq!(s.pins, 3);
        assert_eq!(s.advances, 1);
    }
}
