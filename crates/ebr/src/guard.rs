//! RAII guard over a pinned read-side critical section.

use crate::epoch::{EpochZone, ReadTicket};

/// A pinned read-side critical section that un-pins on drop.
///
/// Wraps a [`ReadTicket`] so early returns and panics inside a reader
/// cannot leave the parity counter elevated (which would block every
/// future writer forever).
///
/// ```
/// use rcuarray_ebr::{EpochZone, EpochGuard};
/// let zone = EpochZone::new();
/// {
///     let g = EpochGuard::pin(&zone);
///     assert_eq!(zone.readers_on(g.parity()), 1);
/// } // dropped: unpinned
/// assert_eq!(zone.readers_on(0), 0);
/// ```
#[derive(Debug)]
pub struct EpochGuard<'z> {
    zone: &'z EpochZone,
    ticket: Option<ReadTicket>,
}

impl<'z> EpochGuard<'z> {
    /// Pin the zone and wrap the ticket.
    #[inline]
    pub fn pin(zone: &'z EpochZone) -> Self {
        EpochGuard {
            ticket: Some(zone.pin()),
            zone,
        }
    }

    /// The epoch this guard linearized at.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.ticket.as_ref().expect("guard not yet dropped").epoch()
    }

    /// The parity counter this guard is recorded on.
    #[inline]
    pub fn parity(&self) -> usize {
        self.ticket
            .as_ref()
            .expect("guard not yet dropped")
            .parity()
    }

    /// Unpin eagerly (equivalent to drop, but explicit at call sites that
    /// want to mark the end of the critical section).
    #[inline]
    pub fn unpin(self) {}
}

impl Drop for EpochGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(t) = self.ticket.take() {
            self.zone.unpin(t);
            // A panicking reader still unpins (the store above) — count
            // it so chaos runs can assert no epoch ever wedged.
            if std::thread::panicking() {
                self.zone.note_guard_panic();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_unpins_on_drop() {
        let z = EpochZone::new();
        {
            let _g = EpochGuard::pin(&z);
            assert_eq!(z.readers_on(0), 1);
        }
        assert_eq!(z.readers_on(0), 0);
    }

    #[test]
    fn guard_unpins_on_panic() {
        let z = EpochZone::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = EpochGuard::pin(&z);
            panic!("reader died");
        }));
        assert!(r.is_err());
        assert_eq!(z.readers_on(0), 0, "panicked reader must still unpin");
        assert_eq!(z.stats().guard_panics, 1, "the unwind release is counted");
    }

    #[test]
    fn explicit_unpin() {
        let z = EpochZone::new();
        let g = EpochGuard::pin(&z);
        g.unpin();
        assert_eq!(z.readers_on(0), 0);
    }

    #[test]
    fn nested_guards_stack() {
        let z = EpochZone::new();
        let g1 = EpochGuard::pin(&z);
        let g2 = EpochGuard::pin(&z);
        assert_eq!(z.readers_on(0), 2);
        drop(g2);
        assert_eq!(z.readers_on(0), 1);
        drop(g1);
        assert_eq!(z.readers_on(0), 0);
    }

    #[test]
    fn guard_reports_ticket_fields() {
        let z = EpochZone::new();
        z.synchronize(); // epoch 1
        let g = EpochGuard::pin(&z);
        assert_eq!(g.epoch(), 1);
        assert_eq!(g.parity(), 1);
    }
}
