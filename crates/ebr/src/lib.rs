#![warn(missing_docs)]

//! # rcuarray-ebr — TLS-free Epoch-Based Reclamation
//!
//! This crate implements the novel extension to Epoch-Based Reclamation
//! presented in §III-A of *RCUArray* (Jenkins, IPDPSW 2018): an EBR scheme
//! that "functions without the requirement for either Task-Local or
//! Thread-Local storage, as the Chapel language currently lacks a notion of
//! either".
//!
//! ## The scheme
//!
//! Classic EBR gives each thread a private epoch slot; writers scan the
//! slots. Without TLS, readers cannot broadcast individually, so they do so
//! *collectively*: a zone keeps
//!
//! * `GlobalEpoch` — an atomic, monotonically increasing counter, and
//! * `EpochReaders` — exactly **two** shared counters, indexed by the
//!   *parity* of the epoch a reader observed.
//!
//! A reader performs a *read–increment–verify* loop ([`EpochZone::pin`],
//! Algorithm 1 lines 9–17): read the epoch, increment the counter of its
//! parity, then re-read the epoch. If the epoch moved in between, the
//! reader undoes its increment and retries; otherwise it has linearized and
//! may access the protected pointer until it un-pins. A writer
//! ([`EpochZone::advance`] + [`EpochZone::wait_for_readers`], lines 5–8)
//! bumps the epoch from `e` to `e+1` and waits for the `e`-parity counter
//! to drain before reclaiming the snapshot readers of `e` might hold.
//!
//! Two counters suffice even across integer overflow because only two
//! snapshots can be live at once (single writer) and consecutive epochs
//! always differ in parity — including at the wrap from the maximum epoch
//! back to `0` (paper Lemma 2; property-tested in this crate).
//!
//! ## Cost model
//!
//! The collective counters are also why the paper measures EBRArray at
//! 2–40% of an unsynchronized array's read throughput: every read performs
//! two sequentially-consistent read-modify-writes on *shared* cache lines.
//! [`OrderingMode`] exposes that knob for the ablation benchmark.
//!
//! ## Example
//!
//! ```
//! use rcuarray_ebr::RcuCell;
//!
//! let cell = RcuCell::new(vec![1, 2, 3]);
//! // Readers may run at any time, including during a write.
//! let sum: i32 = cell.read(|v| v.iter().sum());
//! assert_eq!(sum, 6);
//! // A writer clones, mutates the clone, publishes, and reclaims the old
//! // value after all readers of it have evacuated.
//! cell.write(|old| {
//!     let mut new = old.clone();
//!     new.push(4);
//!     new
//! });
//! assert_eq!(cell.read(|v| v.len()), 4);
//! ```

pub mod backoff;
pub mod epoch;
pub mod guard;
pub mod ordering;
pub mod rcu_cell;
pub mod reclaim;
pub mod sharded;

pub use backoff::Backoff;
pub use epoch::{EpochZone, ZoneStats};
pub use guard::EpochGuard;
pub use ordering::OrderingMode;
pub use rcu_cell::RcuCell;
pub use sharded::{ShardedEpochZone, ShardedTicket};

// The unified reclamation vocabulary, re-exported so EBR consumers need
// only this crate.
pub use rcuarray_reclaim::{
    Backpressure, PressureConfig, Reclaim, ReclaimStats, Retired, StallPolicy,
};
