//! Property and stress tests of `RcuCell` against a sequential model,
//! plus protocol accounting under adversarial schedules.

use proptest::prelude::*;
use rcuarray_analysis::atomic::{AtomicBool, Ordering};
use rcuarray_ebr::{EpochZone, OrderingMode, RcuCell, ShardedEpochZone};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum CellOp {
    Read,
    Add(u64),
    Replace(u64),
}

fn op_strategy() -> impl Strategy<Value = CellOp> {
    prop_oneof![
        Just(CellOp::Read),
        prop::num::u64::ANY.prop_map(|v| CellOp::Add(v % 1000)),
        prop::num::u64::ANY.prop_map(|v| CellOp::Replace(v % 1000)),
    ]
}

proptest! {
    #[test]
    fn cell_matches_sequential_model(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let cell = RcuCell::new(0u64);
        let mut model = 0u64;
        for op in ops {
            match op {
                CellOp::Read => prop_assert_eq!(cell.read(|v| *v), model),
                CellOp::Add(x) => {
                    model = model.wrapping_add(x);
                    cell.write(|v| v.wrapping_add(x));
                }
                CellOp::Replace(x) => {
                    model = x;
                    cell.replace(x);
                }
            }
        }
        prop_assert_eq!(cell.into_inner(), model);
    }

    #[test]
    fn zone_parity_accounting_balances(pins in 1usize..50, advances in 0usize..20) {
        let zone = EpochZone::new();
        for _ in 0..advances {
            zone.synchronize();
        }
        let mut tickets = Vec::new();
        for _ in 0..pins {
            tickets.push(zone.pin());
        }
        let total: u64 = zone.readers_on(0) + zone.readers_on(1);
        prop_assert_eq!(total, pins as u64);
        for t in tickets {
            zone.unpin(t);
        }
        prop_assert_eq!(zone.readers_on(0) + zone.readers_on(1), 0);
        prop_assert_eq!(zone.stats().pins, pins as u64);
    }
}

#[test]
fn writers_starve_neither_readers_nor_each_other() {
    // Two cells sharing nothing; two writer threads and two reader
    // threads ping between them. Bounded runtime demonstrates absence of
    // livelock between the retry loop and the drain loop.
    let a = Arc::new(RcuCell::new(0u64));
    let b = Arc::new(RcuCell::new(0u64));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for cell in [&a, &b] {
            let cell = Arc::clone(cell);
            s.spawn(move || {
                for _ in 0..2000 {
                    cell.write(|v| v + 1);
                }
            });
        }
        for _ in 0..2 {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let x = a.read(|v| *v);
                    let y = b.read(|v| *v);
                    assert!(x <= 2000 && y <= 2000);
                }
            });
        }
        // The writers finish; then stop the readers.
        s.spawn(move || {
            // Writers are the first two spawns; crude but effective:
            // wait until both cells reach their final value.
            loop {
                if a.read(|v| *v) == 2000 && b.read(|v| *v) == 2000 {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
                rcuarray_analysis::thread::yield_now();
            }
        });
    });
}

#[test]
fn retry_rate_is_visible_in_stats_under_writer_pressure() {
    let cell = Arc::new(RcuCell::new(0u64));
    std::thread::scope(|s| {
        let c1 = Arc::clone(&cell);
        s.spawn(move || {
            for _ in 0..3000 {
                c1.write(|v| v + 1);
            }
        });
        let c2 = Arc::clone(&cell);
        s.spawn(move || {
            for _ in 0..30_000 {
                let _ = c2.read(|v| *v);
            }
        });
    });
    let stats = cell.stats();
    assert_eq!(stats.advances, 3000);
    assert_eq!(stats.pins, 30_000);
    // Retries are schedule-dependent; just require the counter is sane.
    assert!(stats.retries < 10_000_000);
}

#[test]
fn sharded_zone_as_cell_substrate_smoke() {
    // The sharded zone is not wired into RcuCell (the cell keeps the
    // paper's exact two-counter layout); verify the writer-side contract
    // directly instead: pins on all shards gate the drain.
    let zone = Arc::new(ShardedEpochZone::new(4));
    let tickets: Vec<_> = (0..4).map(|i| zone.pin_at(i)).collect();
    let zone2 = Arc::clone(&zone);
    let done = Arc::new(AtomicBool::new(false));
    let done2 = Arc::clone(&done);
    let writer = rcuarray_analysis::thread::spawn(move || {
        zone2.synchronize();
        done2.store(true, Ordering::SeqCst);
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert!(!done.load(Ordering::SeqCst));
    for t in tickets {
        zone.unpin(t);
    }
    writer.join().unwrap();
}

#[test]
fn acqrel_cell_agrees_with_seqcst_cell_sequentially() {
    let a = RcuCell::with_mode(0u64, OrderingMode::SeqCst);
    let b = RcuCell::with_mode(0u64, OrderingMode::AcqRelFence);
    for k in 0..100 {
        a.write(|v| v + k);
        b.write(|v| v + k);
        assert_eq!(a.read(|v| *v), b.read(|v| *v));
    }
}
