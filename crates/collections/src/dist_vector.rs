//! A distributed, parallel-safe, append-only vector on the RCUArray
//! backbone.
//!
//! `push` is two steps: claim a slot index with one atomic fetch-add,
//! then make sure the backing array covers it — growing through
//! RCUArray's parallel-safe `resize` when it does not. Because resizes
//! never invalidate concurrent reads or updates, pushers racing with the
//! growth they trigger is the *intended* mode of operation, not a special
//! case.

use rcuarray::{CommError, Config, ElemRef, Element, QsbrScheme, RcuArray, Scheme};
use rcuarray_runtime::Cluster;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An append-only distributed vector (see [module docs](self)).
///
/// `DistVector` is deliberately **not** `Clone`: unlike the backing
/// [`RcuArray`], whose clones alias one shared array, the length counter
/// lives in this struct, so a structural clone would fork the length and
/// lose pushes. Share a vector across threads through
/// [`Arc`]`<DistVector<..>>` instead.
pub struct DistVector<T: Element, S: Scheme = QsbrScheme> {
    array: RcuArray<T, S>,
    len: AtomicUsize,
}

impl<T: Element, S: Scheme> DistVector<T, S> {
    /// An empty vector over `cluster` with the default array config.
    pub fn new(cluster: &Arc<Cluster>) -> Self {
        Self::with_config(cluster, Config::default())
    }

    /// An empty vector with an explicit backing-array configuration.
    pub fn with_config(cluster: &Arc<Cluster>, config: Config) -> Self {
        DistVector {
            array: RcuArray::with_config(cluster, config),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of pushed elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when nothing was pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserved capacity of the backing array.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.array.capacity()
    }

    /// The backing RCUArray (for stats and checkpointing).
    pub fn backing(&self) -> &RcuArray<T, S> {
        &self.array
    }

    /// Append `value`; returns its index. Parallel-safe against other
    /// pushes, reads, updates, and the resizes growth triggers.
    ///
    /// Under an enabled fault plan, growth failures that exhaust the
    /// backing array's retry budget panic — use
    /// [`try_push`](Self::try_push) to handle them.
    pub fn push(&self, value: T) -> usize {
        self.try_push(value)
            .unwrap_or_else(|e| panic!("DistVector push aborted: {e}"))
    }

    /// Append `value`, surfacing growth failure (after the backing
    /// array's [`Config::retry`] budget) instead of panicking.
    ///
    /// On `Err` the claimed index stays reserved but unwritten — an
    /// append-only vector cannot give an interior slot back once later
    /// pushers may have claimed past it. The slot reads as `T::default()`
    /// after a later successful growth covers it. A healthy cluster with
    /// an unbounded [`Config::pressure`] never returns `Err`; a bounded
    /// one refuses growth with [`CommError::Backpressure`] once the
    /// reclamation backlog pins the byte cap through the whole retry
    /// budget (each retry's resize attempt quiesces, so transient
    /// pressure drains inside the loop).
    pub fn try_push(&self, value: T) -> Result<usize, CommError> {
        let idx = self.len.fetch_add(1, Ordering::AcqRel);
        let policy = self.array.config().retry;
        // Growth can fail under fault injection or a bounded backlog;
        // both surface as retryable `CommError`s through the same loop.
        let fallible =
            self.array.cluster().fault().is_enabled() || self.array.config().pressure.is_bounded();
        // Whoever wins the cluster write lock grows; losers re-check.
        while idx >= self.array.capacity() {
            let want = self
                .array
                .config()
                .block_size
                .max(idx + 1 - self.array.capacity());
            if fallible {
                policy.run(self.array.cluster().comm(), || self.array.try_resize(want))?;
            } else {
                self.array.resize(want);
            }
        }
        self.array.write(idx, value);
        Ok(idx)
    }

    /// Read element `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        assert!(
            i < self.len(),
            "index {i} out of bounds (len {})",
            self.len()
        );
        self.array.read(i)
    }

    /// Read element `i`, or `None` past the end.
    #[inline]
    pub fn try_get(&self, i: usize) -> Option<T> {
        if i < self.len() {
            Some(self.array.read(i))
        } else {
            None
        }
    }

    /// Update element `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        assert!(
            i < self.len(),
            "index {i} out of bounds (len {})",
            self.len()
        );
        self.array.write(i, v);
    }

    /// A resize-stable reference to element `i` (RCUArray Lemma 6).
    pub fn get_ref(&self, i: usize) -> ElemRef<'_, T> {
        assert!(
            i < self.len(),
            "index {i} out of bounds (len {})",
            self.len()
        );
        self.array.get_ref(i)
    }

    /// Quiesce the calling thread (QSBR checkpoint; no-op under EBR).
    pub fn checkpoint(&self) -> usize {
        self.array.checkpoint()
    }

    /// Snapshot the pushed elements.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.array.read(i)).collect()
    }
}

impl<T: Element + std::fmt::Debug, S: Scheme> std::fmt::Debug for DistVector<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistVector")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("scheme", &self.array.scheme_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray::EbrScheme;
    use rcuarray_runtime::Topology;
    use std::collections::HashSet;

    fn cluster() -> Arc<Cluster> {
        Cluster::new(Topology::new(3, 2))
    }

    fn cfg() -> Config {
        Config {
            block_size: 16,
            account_comm: false,
            ..Config::default()
        }
    }

    #[test]
    fn push_get_round_trip() {
        let v: DistVector<u64> = DistVector::with_config(&cluster(), cfg());
        assert!(v.is_empty());
        for i in 0..100 {
            assert_eq!(v.push(i * 2), i as usize);
        }
        assert_eq!(v.len(), 100);
        for i in 0..100u64 {
            assert_eq!(v.get(i as usize), i * 2);
        }
        assert_eq!(v.try_get(100), None);
        v.checkpoint();
    }

    #[test]
    fn set_and_get_ref() {
        let v: DistVector<u64> = DistVector::with_config(&cluster(), cfg());
        v.push(1);
        v.push(2);
        v.set(0, 9);
        assert_eq!(v.get(0), 9);
        let r = v.get_ref(1);
        // Trigger growth past several blocks while holding the ref.
        for i in 0..100 {
            v.push(i);
        }
        r.set(77);
        assert_eq!(v.get(1), 77);
        v.checkpoint();
    }

    #[test]
    fn capacity_grows_by_blocks() {
        let v: DistVector<u64> = DistVector::with_config(&cluster(), cfg());
        for _ in 0..17 {
            v.push(0);
        }
        assert_eq!(v.len(), 17);
        assert_eq!(v.capacity(), 32, "two 16-element blocks");
    }

    #[test]
    fn concurrent_pushes_lose_nothing_qsbr() {
        concurrent_pushes_lose_nothing::<QsbrScheme>();
    }

    #[test]
    fn concurrent_pushes_lose_nothing_ebr() {
        concurrent_pushes_lose_nothing::<EbrScheme>();
    }

    fn concurrent_pushes_lose_nothing<S: Scheme>() {
        let c = cluster();
        let v: Arc<DistVector<u64, S>> = Arc::new(DistVector::with_config(&c, cfg()));
        const THREADS: u64 = 4;
        const PER: u64 = 400;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let v = Arc::clone(&v);
                s.spawn(move || {
                    for k in 0..PER {
                        v.push(t * PER + k);
                    }
                    v.checkpoint();
                });
            }
        });
        assert_eq!(v.len(), (THREADS * PER) as usize);
        let seen: HashSet<u64> = v.to_vec().into_iter().collect();
        assert_eq!(seen.len(), (THREADS * PER) as usize, "all pushes present");
        v.checkpoint();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_len_panics_even_within_capacity() {
        let v: DistVector<u64> = DistVector::with_config(&cluster(), cfg());
        v.push(1); // capacity is now 16, len is 1
        v.get(5);
    }

    #[test]
    fn debug_shows_scheme() {
        let v: DistVector<u64, EbrScheme> = DistVector::with_config(&cluster(), cfg());
        assert!(format!("{v:?}").contains("ebr"));
    }
}
