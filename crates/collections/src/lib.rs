#![warn(missing_docs)]

//! # rcuarray-collections — the vector and table on the RCUArray backbone
//!
//! The paper's conclusion (§VI): "RCUArray can serve as the ideal
//! backbone for a random-access data structure such as a distributed
//! vector or table which both benefit from the ability to be resized and
//! indexed with parallel-safety." This crate ships both:
//!
//! * [`DistVector`] — an append-only distributed vector: `push` claims a
//!   slot with one fetch-add and grows the backing RCUArray on demand;
//!   pushes, reads and the resizes they trigger all run concurrently.
//! * [`DistTable`] — an open-addressing distributed hash table whose slot
//!   storage is a pair of RCUArrays; inserts claim key slots with element
//!   CAS and run concurrently with lookups and with capacity growth.
//!
//! Both are generic over the reclamation [`Scheme`](rcuarray::Scheme),
//! like the array itself.

pub mod dist_table;
pub mod dist_vector;

pub use dist_table::DistTable;
pub use dist_vector::DistVector;
