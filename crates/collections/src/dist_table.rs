//! A distributed open-addressing hash table on the RCUArray backbone —
//! the "table" of the paper's conclusion.
//!
//! Slot storage is a pair of RCUArrays (keys and values) distributed
//! block-cyclically across the cluster. Lookups and inserts are
//! parallel-safe against each other: inserts claim an empty key slot with
//! an element compare-exchange, then store the value. Growth rebuilds the
//! table at twice the capacity and is gated on `&mut self` — exclusive
//! access *is* the quiescence proof, enforced by the borrow checker
//! rather than by a stop-the-world protocol.
//!
//! ## Semantics and caveats
//!
//! * Keys are `u64` with `0` reserved as the empty sentinel and
//!   `u64::MAX` as the tombstone; values are `u64`.
//! * A `get` racing the `insert` of the same key may observe the key with
//!   its value still default (`0`): the claim publishes the key before
//!   the value lands one store later. Callers that cannot tolerate this
//!   should encode presence into the value.
//! * Tombstoned slots are not reused by inserts (prevents duplicate keys
//!   without a second synchronization round); they are compacted away by
//!   [`DistTable::grow`].

use rcuarray::{CommError, Config, QsbrScheme, RcuArray, Scheme};
use rcuarray_runtime::Cluster;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Empty-slot sentinel.
const EMPTY: u64 = 0;
/// Tombstone sentinel.
const TOMB: u64 = u64::MAX;

/// Outcome of an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insert {
    /// The key was new; a slot was claimed.
    Added,
    /// The key existed; its value was overwritten.
    Updated,
}

/// Error: no free slot within the probe bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("distributed table is full; call grow()")
    }
}

impl std::error::Error for TableFull {}

/// The distributed hash table (see [module docs](self)), generic over the
/// backing arrays' reclamation [`Scheme`] exactly like [`RcuArray`]
/// itself; defaults to QSBR, matching the paper's preferred configuration
/// for read-dominant workloads.
pub struct DistTable<S: Scheme = QsbrScheme> {
    cluster: Arc<Cluster>,
    keys: RcuArray<u64, S>,
    values: RcuArray<u64, S>,
    mask: usize,
    live: AtomicUsize,
    config: Config,
}

#[inline]
fn hash(key: u64) -> usize {
    // Fibonacci hashing: cheap, well-mixed for sequential keys.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize
}

impl<S: Scheme> DistTable<S> {
    /// A table with at least `capacity` slots (rounded up to a power of
    /// two and to whole blocks).
    pub fn with_capacity(cluster: &Arc<Cluster>, capacity: usize) -> Self {
        Self::with_config(cluster, capacity, Config::default())
    }

    /// As [`with_capacity`](Self::with_capacity) with an explicit backing
    /// array configuration.
    pub fn with_config(cluster: &Arc<Cluster>, capacity: usize, config: Config) -> Self {
        let slots = capacity
            .next_power_of_two()
            .max(config.block_size.next_power_of_two());
        let keys = RcuArray::with_capacity(cluster, config, slots);
        let values = RcuArray::with_capacity(cluster, config, slots);
        DistTable {
            cluster: Arc::clone(cluster),
            keys,
            values,
            mask: slots - 1,
            live: AtomicUsize::new(0),
            config,
        }
    }

    /// Total slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Live entries (excludes tombstones). Approximate under concurrency.
    #[inline]
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// True when no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check_key(key: u64) {
        assert!(
            key != EMPTY && key != TOMB,
            "keys 0 and u64::MAX are reserved sentinels"
        );
    }

    /// Insert or update `key -> value`, parallel-safe.
    pub fn insert(&self, key: u64, value: u64) -> Result<Insert, TableFull> {
        Self::check_key(key);
        let start = hash(key);
        for probe in 0..=self.mask {
            let slot = (start + probe) & self.mask;
            let cur = self.keys.read(slot);
            if cur == key {
                self.values.write(slot, value);
                return Ok(Insert::Updated);
            }
            if cur == EMPTY {
                match self.keys.get_ref(slot).compare_exchange(EMPTY, key) {
                    Ok(_) => {
                        self.values.write(slot, value);
                        self.live.fetch_add(1, Ordering::AcqRel);
                        return Ok(Insert::Added);
                    }
                    Err(actual) if actual == key => {
                        // Another thread inserted our key concurrently.
                        self.values.write(slot, value);
                        return Ok(Insert::Updated);
                    }
                    Err(_) => {
                        // Slot stolen for a different key; keep probing
                        // from this slot (re-examine it first).
                        let cur = self.keys.read(slot);
                        if cur == key {
                            self.values.write(slot, value);
                            return Ok(Insert::Updated);
                        }
                    }
                }
            }
            // Occupied by another key or a tombstone: continue probing.
        }
        Err(TableFull)
    }

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        Self::check_key(key);
        let start = hash(key);
        for probe in 0..=self.mask {
            let slot = (start + probe) & self.mask;
            match self.keys.read(slot) {
                k if k == key => return Some(self.values.read(slot)),
                EMPTY => return None, // chain ends at first never-used slot
                _ => {}               // other key or tombstone: keep probing
            }
        }
        None
    }

    /// As [`get`](Self::get), but waits out the documented insert race:
    /// observing the key with its value still at the default (`0`) means
    /// the claim has been published while the value store has not landed
    /// yet — retry until it does (spinning first, then yielding).
    ///
    /// The wait is bounded: a *stored* value of `0` is indistinguishable
    /// from the in-flight claim, so after the budget the `0` is returned
    /// as-is. Callers that store genuine zeros should encode presence in
    /// the value instead (see [module docs](self)); for them this method
    /// degrades to `get` plus a bounded delay on zero values.
    pub fn get_checked(&self, key: u64) -> Option<u64> {
        /// Busy-spins before the first yield: the claiming thread's value
        /// store is one instruction behind, so on a multi-core host the
        /// race almost always closes within a few loop iterations.
        const SPINS: usize = 128;
        /// Scheduler yields after that: on an oversubscribed (or 1-CPU)
        /// host the claiming thread needs a time slice to finish.
        const YIELDS: usize = 4096;
        let mut v = self.get(key)?;
        for attempt in 0..SPINS + YIELDS {
            if v != 0 {
                return Some(v);
            }
            if attempt < SPINS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            v = self.get(key)?;
        }
        Some(v)
    }

    /// True when `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`, returning its value. The slot becomes a tombstone.
    pub fn remove(&self, key: u64) -> Option<u64> {
        Self::check_key(key);
        let start = hash(key);
        for probe in 0..=self.mask {
            let slot = (start + probe) & self.mask;
            let cur = self.keys.read(slot);
            if cur == key {
                // Claim the removal: exactly one racing remover wins.
                if self.keys.get_ref(slot).compare_exchange(key, TOMB).is_ok() {
                    let v = self.values.read(slot);
                    self.live.fetch_sub(1, Ordering::AcqRel);
                    return Some(v);
                }
                return None;
            }
            if cur == EMPTY {
                return None;
            }
        }
        None
    }

    /// All live `(key, value)` pairs (not an atomic snapshot).
    pub fn entries(&self) -> Vec<(u64, u64)> {
        (0..self.capacity())
            .filter_map(|slot| {
                let k = self.keys.read(slot);
                (k != EMPTY && k != TOMB).then(|| (k, self.values.read(slot)))
            })
            .collect()
    }

    /// Quiesce the calling thread (a checkpoint over both backing arrays;
    /// no-op under schemes without checkpoints, e.g. EBR).
    pub fn checkpoint(&self) {
        self.keys.checkpoint();
        self.values.checkpoint();
    }

    /// Rebuild at (at least) double the capacity, dropping tombstones.
    ///
    /// Requires `&mut self`: exclusive access is the quiescence guarantee
    /// — with the table typically shared through an `Arc`, obtaining it
    /// proves no other thread can be mid-operation.
    pub fn grow(&mut self) {
        self.try_grow()
            .unwrap_or_else(|e| panic!("DistTable grow aborted: {e}"))
    }

    /// As [`grow`](Self::grow), but surfacing allocation failures under an
    /// enabled fault plan — and backlog refusals
    /// ([`CommError::Backpressure`]) under a bounded `Config::pressure` —
    /// after the configured retry budget, instead of panicking. On `Err`
    /// the table is untouched: the doubled backing arrays are built aside
    /// and installed only once fully allocated.
    pub fn try_grow(&mut self) -> Result<(), CommError> {
        let entries = self.entries();
        let slots = (self.capacity() * 2)
            .next_power_of_two()
            .max(self.config.block_size.next_power_of_two());
        let keys: RcuArray<u64, S> = RcuArray::with_config(&self.cluster, self.config);
        let values: RcuArray<u64, S> = RcuArray::with_config(&self.cluster, self.config);
        let policy = self.config.retry;
        if self.cluster.fault().is_enabled() || self.config.pressure.is_bounded() {
            policy.run(self.cluster.comm(), || keys.try_resize(slots))?;
            policy.run(self.cluster.comm(), || values.try_resize(slots))?;
        } else {
            keys.resize(slots);
            values.resize(slots);
        }
        let bigger = DistTable {
            cluster: Arc::clone(&self.cluster),
            keys,
            values,
            mask: slots - 1,
            live: AtomicUsize::new(0),
            config: self.config,
        };
        for (k, v) in entries {
            bigger
                .insert(k, v)
                .expect("doubled table cannot be full during rehash");
        }
        bigger.checkpoint();
        *self = bigger;
        Ok(())
    }
}

impl<S: Scheme> std::fmt::Debug for DistTable<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistTable")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("scheme", &S::NAME)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_runtime::Topology;
    use std::collections::HashMap;

    fn cluster() -> Arc<Cluster> {
        Cluster::new(Topology::new(2, 2))
    }

    fn cfg() -> Config {
        Config {
            block_size: 16,
            account_comm: false,
            ..Config::default()
        }
    }

    fn table(capacity: usize) -> DistTable {
        DistTable::with_config(&cluster(), capacity, cfg())
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let t = table(64);
        assert!(t.is_empty());
        assert_eq!(t.insert(7, 700), Ok(Insert::Added));
        assert_eq!(t.insert(8, 800), Ok(Insert::Added));
        assert_eq!(t.get(7), Some(700));
        assert_eq!(t.get(8), Some(800));
        assert_eq!(t.get(9), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.insert(7, 701), Ok(Insert::Updated));
        assert_eq!(t.get(7), Some(701));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(7), Some(701));
        assert_eq!(t.get(7), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(7), None);
        t.checkpoint();
    }

    #[test]
    fn lookups_probe_past_tombstones() {
        let t = table(64);
        // Force a collision chain, then tombstone its head.
        let keys: Vec<u64> = (1..200)
            .filter(|&k| hash(k) & t.mask == hash(1) & t.mask)
            .take(3)
            .collect();
        assert!(keys.len() >= 2, "need colliding keys for this test");
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        t.remove(keys[0]);
        for (i, &k) in keys.iter().enumerate().skip(1) {
            assert_eq!(t.get(k), Some(i as u64), "chain broken by tombstone");
        }
    }

    #[test]
    #[should_panic(expected = "reserved sentinels")]
    fn key_zero_rejected() {
        table(16).insert(0, 1).unwrap();
    }

    #[test]
    #[should_panic(expected = "reserved sentinels")]
    fn key_max_rejected() {
        let _ = table(16).get(u64::MAX);
    }

    #[test]
    fn fills_up_and_reports_full() {
        let t = table(16); // 16 slots exactly
        let mut inserted = 0;
        for k in 1..=100u64 {
            match t.insert(k, k) {
                Ok(Insert::Added) => inserted += 1,
                Ok(Insert::Updated) => unreachable!(),
                Err(TableFull) => break,
            }
        }
        assert_eq!(inserted, 16, "all slots usable before TableFull");
    }

    #[test]
    fn grow_preserves_entries_and_drops_tombstones() {
        let mut t = table(16);
        for k in 1..=12u64 {
            t.insert(k, k * 10).unwrap();
        }
        t.remove(3);
        t.remove(4);
        let before = t.capacity();
        t.grow();
        assert_eq!(t.capacity(), before * 2);
        assert_eq!(t.len(), 10);
        for k in 1..=12u64 {
            if k == 3 || k == 4 {
                assert_eq!(t.get(k), None);
            } else {
                assert_eq!(t.get(k), Some(k * 10), "key {k} lost in grow");
            }
        }
    }

    #[test]
    fn concurrent_inserts_distinct_keys() {
        let t = Arc::new(table(1 << 12));
        const THREADS: u64 = 4;
        const PER: u64 = 500;
        std::thread::scope(|s| {
            for w in 0..THREADS {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for k in 0..PER {
                        let key = w * PER + k + 1;
                        assert_eq!(t.insert(key, key * 2), Ok(Insert::Added));
                    }
                    t.checkpoint();
                });
            }
        });
        assert_eq!(t.len(), (THREADS * PER) as usize);
        for key in 1..=THREADS * PER {
            assert_eq!(t.get(key), Some(key * 2), "key {key}");
        }
    }

    #[test]
    fn concurrent_inserts_same_keys_converge() {
        let t = Arc::new(table(1 << 10));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for k in 1..=200u64 {
                        t.insert(k, k).unwrap();
                    }
                });
            }
        });
        assert_eq!(t.len(), 200, "no duplicate slots for the same key");
        let entries: HashMap<u64, u64> = t.entries().into_iter().collect();
        assert_eq!(entries.len(), 200);
        for k in 1..=200u64 {
            assert_eq!(entries[&k], k);
        }
    }

    #[test]
    fn concurrent_lookups_during_inserts() {
        let t = Arc::new(table(1 << 12));
        std::thread::scope(|s| {
            let t1 = Arc::clone(&t);
            s.spawn(move || {
                for k in 1..=1000u64 {
                    t1.insert(k, k + 5).unwrap();
                }
            });
            let t2 = Arc::clone(&t);
            s.spawn(move || {
                for _ in 0..3 {
                    for k in 1..=1000u64 {
                        if let Some(v) = t2.get(k) {
                            // Transient 0 is documented; otherwise exact.
                            assert!(v == k + 5 || v == 0, "key {k} had {v}");
                        }
                    }
                }
            });
        });
        for k in 1..=1000u64 {
            assert_eq!(t.get(k), Some(k + 5));
        }
    }

    /// Regression pin for the documented `get` race (module docs): a key
    /// whose claim has been published but whose value store has not yet
    /// landed reads as present with the default value. This is the
    /// contract `get_checked` exists to paper over — if this test starts
    /// failing, `get` grew synchronization and the module docs (and
    /// `get_checked`) need revisiting.
    #[test]
    fn get_sees_default_value_inside_claim_window() {
        let t = table(64);
        let key = 42u64;
        // Reproduce insert()'s intermediate state deterministically:
        // claim the slot, don't store the value.
        let slot = hash(key) & t.mask;
        t.keys
            .get_ref(slot)
            .compare_exchange(EMPTY, key)
            .expect("slot must be empty in a fresh table");
        assert_eq!(
            t.get(key),
            Some(0),
            "a claimed-but-unstored key must read as default, per module docs"
        );
        // get_checked on the same state must not hang: the budget expires
        // and the default is surfaced.
        assert_eq!(t.get_checked(key), Some(0));
    }

    #[test]
    fn get_checked_outwaits_the_value_store() {
        let t = Arc::new(table(64));
        let key = 7u64;
        let slot = hash(key) & t.mask;
        t.keys
            .get_ref(slot)
            .compare_exchange(EMPTY, key)
            .expect("slot must be empty in a fresh table");
        std::thread::scope(|s| {
            let t2 = Arc::clone(&t);
            s.spawn(move || {
                // The yield phase of get_checked hands this thread the
                // CPU even on a single-core host.
                t2.values.write(slot, 700);
            });
            assert_eq!(t.get_checked(key), Some(700));
        });
    }

    #[test]
    fn get_checked_matches_get_when_no_race() {
        let t = table(64);
        t.insert(5, 50).unwrap();
        assert_eq!(t.get_checked(5), Some(50));
        assert_eq!(t.get_checked(6), None);
        t.remove(5);
        assert_eq!(t.get_checked(5), None);
    }

    #[test]
    fn works_under_any_scheme() {
        use rcuarray::{EbrScheme, LeakScheme};
        let e: DistTable<EbrScheme> = DistTable::with_config(&cluster(), 64, cfg());
        e.insert(1, 10).unwrap();
        assert_eq!(e.get(1), Some(10));
        assert!(format!("{e:?}").contains("ebr"));
        e.checkpoint(); // no-op under EBR

        let mut l: DistTable<LeakScheme> = DistTable::with_config(&cluster(), 16, cfg());
        for k in 1..=10u64 {
            l.insert(k, k).unwrap();
        }
        l.grow();
        for k in 1..=10u64 {
            assert_eq!(l.get(k), Some(k), "key {k} lost in leak-scheme grow");
        }
    }

    #[test]
    fn entries_lists_live_pairs() {
        let t = table(64);
        t.insert(5, 50).unwrap();
        t.insert(6, 60).unwrap();
        t.remove(5);
        let e = t.entries();
        assert_eq!(e, vec![(6, 60)].into_iter().collect::<Vec<_>>());
    }
}
