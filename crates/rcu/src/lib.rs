#![warn(missing_docs)]

//! # rcuarray-rcu — RCU decoupled from RCUArray
//!
//! The paper's conclusion points at exactly this crate: "In future work,
//! the decoupling of EBR from RCUArray can be performed easily, and future
//! improvements to the decoupled EBR algorithm are planned and can even be
//! used in other languages that lack official support for TLS".
//!
//! [`Reclaim`] is the workspace-wide reclamation trait (crate
//! `rcuarray-reclaim`), implemented natively by both back-ends built in
//! this workspace and re-exported here:
//!
//! * [`EbrReclaim`] — the TLS-free epoch scheme (an alias for
//!   `rcuarray_ebr::EpochZone`). Readers pay the two-counter announcement
//!   protocol; writers reclaim *synchronously* by draining readers (the
//!   paper's `RCU_Write` shape).
//! * [`QsbrReclaim`] — the runtime QSBR (an alias for
//!   `rcuarray_qsbr::QsbrDomain`). Readers pay nothing; writers *defer*
//!   reclamation to the retiring thread's list, and application threads
//!   must call [`Reclaim::quiesce`] (a checkpoint) periodically.
//!
//! [`RcuPtr`] is a protected pointer generic over the back-end: the same
//! data-structure code runs under either scheme, which is how `rcuarray`
//! implements the paper's `isQSBR` compile-time switch without
//! duplicating logic.
//!
//! ```
//! use rcuarray_rcu::{EbrReclaim, QsbrReclaim, RcuPtr, Reclaim};
//! use std::sync::Arc;
//!
//! fn sum_under<R: Reclaim>(p: &RcuPtr<Vec<u64>, R>) -> u64 {
//!     p.read(|v| v.iter().sum())
//! }
//!
//! let ebr = RcuPtr::new(vec![1, 2, 3], Arc::new(EbrReclaim::new()));
//! let qsbr = RcuPtr::new(vec![4, 5], Arc::new(QsbrReclaim::new()));
//! assert_eq!(sum_under(&ebr), 6);
//! assert_eq!(sum_under(&qsbr), 9);
//! qsbr.reclaimer().quiesce(); // QSBR needs checkpoints; EBR would no-op
//! ```

pub mod list;
pub mod rcu_ptr;
pub mod reclaimer;

pub use list::RcuList;
pub use rcu_ptr::RcuPtr;
pub use reclaimer::{EbrReclaim, QsbrReclaim, Reclaim, ReclaimStats, Retired};
