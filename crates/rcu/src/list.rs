//! An RCU-protected sorted singly-linked list over the generic
//! [`Reclaim`] back-end — the canonical RCU data structure (§II of the
//! paper: "Applications of RCU can be seen in various data structures
//! such as linked lists…"), built here to demonstrate that the decoupled
//! layer really is reusable beyond the array.
//!
//! Design: the classic single-writer RCU list.
//!
//! * **Readers** traverse `next` pointers inside one read-side critical
//!   section. They never block and never retry.
//! * **Writers** (serialized by an internal mutex) insert by splicing a
//!   fully-initialized node in with one pointer store, and remove by
//!   unlinking then *retiring* the node — EBR frees it after draining
//!   readers, QSBR defers it to checkpoints.
//!
//! Keys are ordered and unique, giving `insert`/`remove`/`contains`
//! set semantics.

use crate::reclaimer::{Reclaim, Retired};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

struct Node<K> {
    key: K,
    next: AtomicPtr<Node<K>>,
}

/// Moves a raw node pointer into a retire closure (see `RcuPtr` for why
/// the by-value method matters under edition-2021 capture rules).
struct SendNode<K>(*mut Node<K>);
// SAFETY: the wrapped node is uniquely owned once unlinked from the list,
// and `K: Send` lets that ownership move to the reclaiming thread.
unsafe impl<K: Send> Send for SendNode<K> {}
impl<K> SendNode<K> {
    fn into_raw(self) -> *mut Node<K> {
        self.0
    }
}

/// An RCU-protected sorted set.
pub struct RcuList<K, R: Reclaim> {
    /// Sentinel head: `head.next` is the first element.
    head: AtomicPtr<Node<K>>,
    reclaim: Arc<R>,
    write_lock: Mutex<()>,
}

// SAFETY: readers dereference nodes concurrently (`K: Sync`) and unlinked
// nodes are dropped on whichever thread drains the reclaimer (`K: Send`);
// node pointers are only freed after the grace period proves them
// unreachable.
unsafe impl<K: Send + Sync, R: Reclaim> Send for RcuList<K, R> {}
// SAFETY: see the `Send` impl above.
unsafe impl<K: Send + Sync, R: Reclaim> Sync for RcuList<K, R> {}

impl<K, R> RcuList<K, R>
where
    K: Ord + Copy + Send + Sync + 'static,
    R: Reclaim,
{
    /// An empty list under the given reclaimer.
    pub fn new(reclaim: Arc<R>) -> Self {
        RcuList {
            head: AtomicPtr::new(std::ptr::null_mut()),
            reclaim,
            write_lock: Mutex::new(()),
        }
    }

    /// The shared reclamation back-end.
    pub fn reclaimer(&self) -> &Arc<R> {
        &self.reclaim
    }

    /// Whether `key` is present. Wait-free traversal under the
    /// back-end's read protocol.
    pub fn contains(&self, key: &K) -> bool {
        let _g = self.reclaim.read_lock();
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: nodes reachable from head inside a read-side
            // critical section are kept alive by the reclaimer contract.
            let node = unsafe { &*cur };
            match node.key.cmp(key) {
                std::cmp::Ordering::Less => cur = node.next.load(Ordering::Acquire),
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Greater => return false,
            }
        }
        false
    }

    /// Snapshot the keys in order (one read-side critical section).
    pub fn to_vec(&self) -> Vec<K> {
        let _g = self.reclaim.read_lock();
        let mut out = Vec::new();
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: as in `contains`.
            let node = unsafe { &*cur };
            out.push(node.key);
            cur = node.next.load(Ordering::Acquire);
        }
        out
    }

    /// Number of elements (a traversal; not O(1)).
    pub fn len(&self) -> usize {
        self.to_vec().len()
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Locate the insertion point for `key` under the write lock:
    /// returns `(prev_link, found)` where `prev_link` is the pointer slot
    /// whose target is the first node with `node.key >= key`.
    ///
    /// Caller must hold the write lock.
    fn find_link(&self, key: &K) -> (&AtomicPtr<Node<K>>, *mut Node<K>) {
        let mut link: &AtomicPtr<Node<K>> = &self.head;
        loop {
            let cur = link.load(Ordering::Acquire);
            if cur.is_null() {
                return (link, cur);
            }
            // SAFETY: write lock held; nodes we reach are linked and can
            // only be retired by us.
            let node = unsafe { &*cur };
            if node.key < *key {
                link = &node.next;
            } else {
                return (link, cur);
            }
        }
    }

    /// Insert `key`; returns false if it was already present.
    pub fn insert(&self, key: K) -> bool {
        let _wl = self.write_lock.lock();
        let (link, cur) = self.find_link(&key);
        if !cur.is_null() {
            // SAFETY: write lock held.
            if unsafe { &*cur }.key == key {
                return false;
            }
        }
        let node = Box::into_raw(Box::new(Node {
            key,
            next: AtomicPtr::new(cur),
        }));
        // Publish: the node is fully initialized before it becomes
        // reachable, so a concurrent reader sees either the old chain or
        // the complete new node — never a half-built one.
        link.store(node, Ordering::Release);
        true
    }

    /// Remove `key`; returns false if it was absent. The node is retired
    /// through the back-end — concurrent readers already past it finish
    /// safely before it is freed.
    pub fn remove(&self, key: &K) -> bool {
        let _wl = self.write_lock.lock();
        let (link, cur) = self.find_link(key);
        if cur.is_null() {
            return false;
        }
        // SAFETY: write lock held.
        let node = unsafe { &*cur };
        if node.key != *key {
            return false;
        }
        let next = node.next.load(Ordering::Acquire);
        // Unlink, then retire: the reclaimer guarantees every reader that
        // could still be on `cur` evacuates before the free.
        link.store(next, Ordering::Release);
        let retired = SendNode(cur);
        self.reclaim.retire(Retired::with_bytes(
            std::mem::size_of::<Node<K>>(),
            move || {
                // SAFETY: unlinked above, back-end-gated.
                drop(unsafe { Box::from_raw(retired.into_raw()) });
            },
        ));
        true
    }
}

impl<K, R: Reclaim> Drop for RcuList<K, R> {
    fn drop(&mut self) {
        // Exclusive access: free the remaining chain directly.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive; nodes are uniquely owned by the chain.
            let mut node = unsafe { Box::from_raw(cur) };
            cur = *node.next.get_mut();
        }
    }
}

impl<K, R> std::fmt::Debug for RcuList<K, R>
where
    K: Ord + Copy + Send + Sync + std::fmt::Debug + 'static,
    R: Reclaim,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.to_vec()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reclaimer::{EbrReclaim, QsbrReclaim};
    use std::sync::atomic::AtomicBool;

    fn exercise<R: Reclaim>(reclaim: Arc<R>) {
        let list = RcuList::new(reclaim);
        assert!(list.is_empty());
        assert!(list.insert(5));
        assert!(list.insert(1));
        assert!(list.insert(9));
        assert!(!list.insert(5), "duplicate rejected");
        assert_eq!(list.to_vec(), vec![1, 5, 9], "sorted order maintained");
        assert!(list.contains(&5));
        assert!(!list.contains(&2));
        assert!(list.remove(&5));
        assert!(!list.remove(&5));
        assert_eq!(list.to_vec(), vec![1, 9]);
        assert_eq!(list.len(), 2);
        list.reclaimer().quiesce();
    }

    #[test]
    fn set_semantics_under_ebr() {
        exercise(Arc::new(EbrReclaim::new()));
    }

    #[test]
    fn set_semantics_under_qsbr() {
        exercise(Arc::new(QsbrReclaim::new()));
    }

    #[test]
    fn removal_head_middle_tail() {
        let list = RcuList::new(Arc::new(EbrReclaim::new()));
        for k in [1, 2, 3, 4, 5] {
            list.insert(k);
        }
        assert!(list.remove(&1)); // head
        assert!(list.remove(&3)); // middle
        assert!(list.remove(&5)); // tail
        assert_eq!(list.to_vec(), vec![2, 4]);
    }

    #[test]
    fn concurrent_readers_during_writer_churn_ebr() {
        let list = Arc::new(RcuList::new(Arc::new(EbrReclaim::new())));
        for k in (0..100).step_by(2) {
            list.insert(k);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let list = Arc::clone(&list);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // Evens are permanent; odds churn. A snapshot is
                        // always sorted and contains every even key.
                        let v = list.to_vec();
                        assert!(v.windows(2).all(|w| w[0] < w[1]), "unsorted snapshot");
                        let evens = v.iter().filter(|k| *k % 2 == 0).count();
                        assert_eq!(evens, 50, "lost a permanent key");
                    }
                });
            }
            let list2 = Arc::clone(&list);
            let stop2 = Arc::clone(&stop);
            s.spawn(move || {
                for round in 0..200 {
                    for k in (1..100).step_by(2) {
                        if round % 2 == 0 {
                            list2.insert(k);
                        } else {
                            list2.remove(&k);
                        }
                    }
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(list.to_vec().len(), 50, "all odds removed at the end");
    }

    #[test]
    fn qsbr_removals_reclaim_at_checkpoints() {
        let reclaim = Arc::new(QsbrReclaim::new());
        let list = RcuList::new(Arc::clone(&reclaim));
        for k in 0..20 {
            list.insert(k);
        }
        for k in 0..20 {
            list.remove(&k);
        }
        assert!(list.is_empty());
        assert_eq!(
            reclaim.quiesce(),
            20,
            "all removed nodes freed at checkpoint"
        );
        assert_eq!(reclaim.reclaim_stats().pending, 0);
    }

    #[test]
    fn drop_frees_remaining_chain() {
        // Sanitizer-visible: building then dropping leaks nothing.
        let list = RcuList::new(Arc::new(EbrReclaim::new()));
        for k in 0..1000 {
            list.insert(k);
        }
        drop(list);
    }

    #[test]
    fn debug_renders_contents() {
        let list = RcuList::new(Arc::new(EbrReclaim::new()));
        list.insert(2);
        list.insert(1);
        assert_eq!(format!("{list:?}"), "[1, 2]");
    }
}
