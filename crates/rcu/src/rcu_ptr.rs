//! [`RcuPtr`]: an RCU-protected pointer generic over the reclamation
//! back-end.

use crate::reclaimer::{Reclaim, Retired};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Moves a raw pointer across the retire boundary. The value behind it is
/// `Send`, and ownership is unique once unlinked.
struct SendPtr<T>(*mut T);
// SAFETY: the value behind the pointer is `Send`, and ownership is unique
// once the pointer is unlinked from the cell.
unsafe impl<T: Send> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Consume the wrapper. A by-value method (rather than field access)
    /// so closures capture the whole `SendPtr` — edition-2021 disjoint
    /// field capture would otherwise capture the raw pointer directly and
    /// lose the `Send` impl.
    fn into_raw(self) -> *mut T {
        self.0
    }
}

/// An RCU-protected pointer: readers see consistent snapshots with the
/// back-end's read cost; writers clone-update-publish-retire.
///
/// This is the paper's `GlobalSnapshot` pattern reduced to a single
/// reusable cell, with `isQSBR` realized as the `R` type parameter.
pub struct RcuPtr<T, R: Reclaim> {
    ptr: AtomicPtr<T>,
    reclaim: Arc<R>,
    write_lock: Mutex<()>,
}

// SAFETY: readers dereference the published snapshot concurrently
// (`T: Sync`) and retired snapshots are dropped on whichever thread
// drains the reclaimer (`T: Send`); the raw pointer is only freed after
// the grace period proves no reader still holds it.
unsafe impl<T: Send + Sync, R: Reclaim> Send for RcuPtr<T, R> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send + Sync, R: Reclaim> Sync for RcuPtr<T, R> {}

impl<T: Send + Sync + 'static, R: Reclaim> RcuPtr<T, R> {
    /// Protect `value` under the given reclaimer. Several `RcuPtr`s may
    /// share one reclaimer (sharing its epoch zone / QSBR domain).
    pub fn new(value: T, reclaim: Arc<R>) -> Self {
        RcuPtr {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            reclaim,
            write_lock: Mutex::new(()),
        }
    }

    /// The shared reclamation back-end.
    pub fn reclaimer(&self) -> &Arc<R> {
        &self.reclaim
    }

    /// Read the current snapshot under the back-end's read protocol.
    #[inline]
    pub fn read<U>(&self, f: impl FnOnce(&T) -> U) -> U {
        let _guard = self.reclaim.read_lock();
        // Load after entering the critical section: under EBR the guard's
        // verified pin obliges writers to keep this snapshot alive; under
        // QSBR the thread-level contract does.
        let snap = self.ptr.load(Ordering::Acquire);
        // SAFETY: published snapshot, protected as described above.
        f(unsafe { &*snap })
    }

    /// Clone-update-publish-retire: derive a new value from the old and
    /// make it current; the old value's destruction goes through the
    /// back-end. Writers serialize on an internal lock.
    pub fn update(&self, f: impl FnOnce(&T) -> T) {
        let _wl = self.write_lock.lock();
        let old = self.ptr.load(Ordering::Acquire);
        // SAFETY: single writer (lock held); `old` is still published.
        let new = Box::into_raw(Box::new(f(unsafe { &*old })));
        self.ptr.store(new, Ordering::Release);
        let old = SendPtr(old);
        self.reclaim
            .retire(Retired::with_bytes(std::mem::size_of::<T>(), move || {
                // SAFETY: unlinked above; the back-end guarantees no reader
                // can still hold it when this closure runs.
                drop(unsafe { Box::from_raw(old.into_raw()) });
            }));
    }

    /// Replace the value outright.
    pub fn replace(&self, value: T) {
        let mut v = Some(value);
        self.update(|_| v.take().expect("update closure runs exactly once"));
    }
}

impl<T, R: Reclaim> Drop for RcuPtr<T, R> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; no readers can exist.
        drop(unsafe { Box::from_raw(*self.ptr.get_mut()) });
    }
}

impl<T: std::fmt::Debug + Send + Sync + 'static, R: Reclaim> std::fmt::Debug for RcuPtr<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.read(|v| {
            f.debug_struct("RcuPtr")
                .field("value", v)
                .field("scheme", &self.reclaim.name())
                .finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reclaimer::{EbrReclaim, QsbrReclaim};
    use std::sync::atomic::AtomicBool;

    fn exercise<R: Reclaim>(reclaim: Arc<R>) {
        let p = RcuPtr::new(0u64, reclaim);
        assert_eq!(p.read(|v| *v), 0);
        p.update(|v| v + 5);
        p.replace(100);
        assert_eq!(p.read(|v| *v), 100);
        p.reclaimer().quiesce();
    }

    #[test]
    fn works_under_ebr() {
        exercise(Arc::new(EbrReclaim::new()));
    }

    #[test]
    fn works_under_qsbr() {
        exercise(Arc::new(QsbrReclaim::new()));
    }

    #[test]
    fn generic_code_is_scheme_agnostic() {
        fn double<R: Reclaim>(p: &RcuPtr<u32, R>) -> u32 {
            p.update(|v| v * 2);
            p.read(|v| *v)
        }
        let e = RcuPtr::new(4, Arc::new(EbrReclaim::new()));
        let q = RcuPtr::new(4, Arc::new(QsbrReclaim::new()));
        assert_eq!(double(&e), 8);
        assert_eq!(double(&q), 8);
    }

    #[test]
    fn concurrent_readers_and_writer_under_ebr() {
        let p = Arc::new(RcuPtr::new((0u64, 0u64), Arc::new(EbrReclaim::new())));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let p = &p;
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        assert!(p.read(|&(a, b)| a == b), "torn snapshot");
                    }
                });
            }
            let p2 = &p;
            let stop2 = &stop;
            s.spawn(move || {
                for _ in 0..2000 {
                    p2.update(|&(a, _)| (a + 1, a + 1));
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(p.read(|v| v.0), 2000);
    }

    #[test]
    fn qsbr_updates_reclaim_after_checkpoints() {
        let reclaim = Arc::new(QsbrReclaim::new());
        let p = RcuPtr::new(0u32, Arc::clone(&reclaim));
        for _ in 0..10 {
            p.update(|v| v + 1);
        }
        // All ten retired snapshots free at this single-thread checkpoint.
        assert_eq!(reclaim.quiesce(), 10);
        assert_eq!(reclaim.reclaim_stats().pending, 0);
    }

    #[test]
    fn two_ptrs_share_one_backend() {
        let reclaim = Arc::new(QsbrReclaim::new());
        let a = RcuPtr::new(1u8, Arc::clone(&reclaim));
        let b = RcuPtr::new(2u8, Arc::clone(&reclaim));
        a.update(|v| v + 1);
        b.update(|v| v + 1);
        assert_eq!(reclaim.quiesce(), 2, "one checkpoint serves both cells");
    }
}
