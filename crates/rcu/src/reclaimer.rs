//! The [`Reclaim`] trait and its EBR / QSBR implementations.

use rcuarray_ebr::{EpochGuard, EpochZone, OrderingMode};
use rcuarray_qsbr::QsbrDomain;

/// A memory-reclamation back-end for RCU-protected structures.
///
/// The contract mirrors the two halves of the paper:
///
/// * Readers bracket every access to a protected pointer with
///   [`read_lock`](Self::read_lock) and hold the returned guard for the
///   duration (under QSBR the guard is free and empty; the *thread-level*
///   contract of not crossing a quiescent point applies instead).
/// * Writers unlink a value, then pass ownership of its destruction to
///   [`retire`](Self::retire). The back-end decides whether that runs
///   synchronously after draining readers (EBR) or is deferred to a later
///   checkpoint (QSBR).
pub trait Reclaim: Send + Sync + 'static {
    /// Read-side critical-section guard. `()` for schemes with free reads.
    type Guard<'a>
    where
        Self: 'a;

    /// Enter a read-side critical section.
    fn read_lock(&self) -> Self::Guard<'_>;

    /// Hand over an unlinked value's destructor. After this returns (EBR)
    /// or after every participant passes a quiescent state (QSBR), the
    /// destructor has run / will run exactly once.
    fn retire(&self, reclaim: Box<dyn FnOnce() + Send>);

    /// Announce a quiescent state for the calling thread. Checkpoint under
    /// QSBR; no-op under EBR. Returns how many deferred reclamations ran.
    fn quiesce(&self) -> usize;

    /// True when readers must hold [`read_lock`](Self::read_lock) guards
    /// for correctness (EBR), false when reads are free (QSBR). The
    /// paper's `isQSBR` parameter, inverted.
    fn guards_reads(&self) -> bool;

    /// Human-readable scheme name for harness output.
    fn name(&self) -> &'static str;
}

/// EBR back-end: the paper's TLS-free two-counter protocol with
/// synchronous writer-side reclamation.
#[derive(Debug, Default)]
pub struct EbrReclaim {
    zone: EpochZone,
}

impl EbrReclaim {
    /// A zone with the paper's `SeqCst` protocol.
    pub fn new() -> Self {
        EbrReclaim {
            zone: EpochZone::new(),
        }
    }

    /// A zone with an explicit ordering mode (ablation).
    pub fn with_mode(mode: OrderingMode) -> Self {
        EbrReclaim {
            zone: EpochZone::with_mode(mode),
        }
    }

    /// The underlying epoch zone.
    pub fn zone(&self) -> &EpochZone {
        &self.zone
    }
}

impl Reclaim for EbrReclaim {
    type Guard<'a> = EpochGuard<'a>;

    #[inline]
    fn read_lock(&self) -> EpochGuard<'_> {
        EpochGuard::pin(&self.zone)
    }

    fn retire(&self, reclaim: Box<dyn FnOnce() + Send>) {
        // The paper's RCU_Write tail: advance the epoch, drain readers of
        // the old parity, then delete — synchronously, on the writer.
        self.zone.synchronize();
        reclaim();
    }

    #[inline]
    fn quiesce(&self) -> usize {
        0 // EBR has no checkpoints; reclamation happened at retire().
    }

    #[inline]
    fn guards_reads(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "ebr"
    }
}

/// QSBR back-end: free reads, deferred reclamation, explicit checkpoints.
#[derive(Debug, Clone, Default)]
pub struct QsbrReclaim {
    domain: QsbrDomain,
}

impl QsbrReclaim {
    /// A fresh, private QSBR domain.
    pub fn new() -> Self {
        QsbrReclaim {
            domain: QsbrDomain::new(),
        }
    }

    /// Wrap an existing domain (several structures sharing checkpoints).
    pub fn with_domain(domain: QsbrDomain) -> Self {
        QsbrReclaim { domain }
    }

    /// The underlying domain.
    pub fn domain(&self) -> &QsbrDomain {
        &self.domain
    }
}

impl Reclaim for QsbrReclaim {
    type Guard<'a> = ();

    #[inline]
    fn read_lock(&self) {
        // Free: the thread-level quiescence contract replaces per-read
        // guards. This is the whole point of QSBR.
    }

    fn retire(&self, reclaim: Box<dyn FnOnce() + Send>) {
        self.domain.defer(reclaim);
    }

    #[inline]
    fn quiesce(&self) -> usize {
        self.domain.checkpoint()
    }

    #[inline]
    fn guards_reads(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "qsbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn retire_counter<R: Reclaim>(r: &R) -> Arc<AtomicUsize> {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        r.retire(Box::new(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        }));
        c
    }

    #[test]
    fn ebr_retire_is_synchronous() {
        let r = EbrReclaim::new();
        let c = retire_counter(&r);
        assert_eq!(c.load(Ordering::SeqCst), 1, "EBR frees before returning");
    }

    #[test]
    fn qsbr_retire_is_deferred_until_quiesce() {
        let r = QsbrReclaim::new();
        let c = retire_counter(&r);
        assert_eq!(c.load(Ordering::SeqCst), 0, "QSBR must defer");
        assert_eq!(r.quiesce(), 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn ebr_guard_blocks_writer_drain() {
        let r = Arc::new(EbrReclaim::new());
        let g = r.read_lock();
        let c = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&r);
        let c2 = Arc::clone(&c);
        let writer = std::thread::spawn(move || {
            r2.retire(Box::new(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            }));
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(c.load(Ordering::SeqCst), 0, "pinned reader gates retire");
        drop(g);
        writer.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scheme_flags() {
        assert!(EbrReclaim::new().guards_reads());
        assert!(!QsbrReclaim::new().guards_reads());
        assert_eq!(EbrReclaim::new().name(), "ebr");
        assert_eq!(QsbrReclaim::new().name(), "qsbr");
    }

    #[test]
    fn shared_domain_reclaims_across_wrappers() {
        let domain = QsbrDomain::new();
        let a = QsbrReclaim::with_domain(domain.clone());
        let b = QsbrReclaim::with_domain(domain);
        let c = retire_counter(&a);
        // A checkpoint through the *other* wrapper frees it: same domain.
        assert_eq!(b.quiesce(), 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }
}
