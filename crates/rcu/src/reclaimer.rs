//! The unified [`Reclaim`] vocabulary, plus the back-end aliases this
//! crate historically exported.
//!
//! Earlier revisions defined a *local* `Reclaim` trait here and wrapped
//! the EBR zone / QSBR domain in adapter structs (`EbrReclaim`,
//! `QsbrReclaim`). The workspace now has one behavior-carrying trait in
//! `rcuarray-reclaim`, implemented natively by [`rcuarray_ebr::EpochZone`]
//! and [`rcuarray_qsbr::QsbrDomain`] — so the adapters dissolved into
//! type aliases and the trait is a re-export. The contract is unchanged:
//!
//! * Readers bracket every access to a protected pointer with
//!   [`Reclaim::read_lock`] and hold the returned guard for the duration
//!   (under QSBR the guard is free and empty; the *thread-level* contract
//!   of not crossing a quiescent point applies instead).
//! * Writers unlink a value, then pass ownership of its destruction to
//!   [`Reclaim::retire`] as a [`Retired`]. The back-end decides whether
//!   that runs synchronously after draining readers (EBR) or is deferred
//!   to a later checkpoint (QSBR).

pub use rcuarray_reclaim::{Reclaim, ReclaimStats, Retired};

/// EBR back-end: the paper's TLS-free two-counter protocol with
/// synchronous writer-side reclamation. An alias for the zone itself —
/// construct with [`EpochZone::new`](rcuarray_ebr::EpochZone::new) or
/// [`EpochZone::with_mode`](rcuarray_ebr::EpochZone::with_mode).
pub type EbrReclaim = rcuarray_ebr::EpochZone;

/// QSBR back-end: free reads, deferred reclamation, explicit checkpoints.
/// An alias for the domain itself — `clone()` it to share checkpoints
/// across several structures.
pub type QsbrReclaim = rcuarray_qsbr::QsbrDomain;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn retire_counter<R: Reclaim>(r: &R) -> Arc<AtomicUsize> {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        r.retire(Retired::new(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        }));
        c
    }

    #[test]
    fn ebr_retire_is_synchronous() {
        let r = EbrReclaim::new();
        let c = retire_counter(&r);
        assert_eq!(c.load(Ordering::SeqCst), 1, "EBR frees before returning");
    }

    #[test]
    fn qsbr_retire_is_deferred_until_quiesce() {
        let r = QsbrReclaim::new();
        let c = retire_counter(&r);
        assert_eq!(c.load(Ordering::SeqCst), 0, "QSBR must defer");
        assert_eq!(r.quiesce(), 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn ebr_guard_blocks_writer_drain() {
        let r = Arc::new(EbrReclaim::new());
        let g = r.read_lock();
        let c = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&r);
        let c2 = Arc::clone(&c);
        let writer = std::thread::spawn(move || {
            r2.retire(Retired::new(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            }));
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(c.load(Ordering::SeqCst), 0, "pinned reader gates retire");
        drop(g);
        writer.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scheme_flags() {
        assert!(EbrReclaim::new().guards_reads());
        assert!(!QsbrReclaim::new().guards_reads());
        assert_eq!(Reclaim::name(&EbrReclaim::new()), "ebr");
        assert_eq!(Reclaim::name(&QsbrReclaim::new()), "qsbr");
    }

    #[test]
    fn shared_domain_reclaims_across_clones() {
        let a = QsbrReclaim::new();
        let b = a.clone();
        let c = retire_counter(&a);
        // A checkpoint through the *other* clone frees it: same domain.
        assert_eq!(b.quiesce(), 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_flow_through_the_unified_trait() {
        let r = QsbrReclaim::new();
        let _ = retire_counter(&r);
        let s = r.reclaim_stats();
        assert_eq!(s.retired, 1);
        assert_eq!(s.pending, 1);
        assert!(s.domain_wide, "QSBR stats are domain-wide");
    }
}
