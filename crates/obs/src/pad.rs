//! Cache-line padding and the TLS-free shard pick shared by the sharded
//! metric cores (same trick as `rcuarray_ebr::ShardedEpochZone`).

use rcuarray_analysis::atomic::AtomicU64;

/// A cache-line-padded atomic counter cell: one shard per line, so
/// concurrent increments on different shards never false-share.
#[repr(align(64))]
#[derive(Default, Debug)]
pub struct Padded(pub AtomicU64);

impl Padded {
    /// A zeroed padded cell.
    pub const fn new() -> Self {
        Padded(AtomicU64::new(0))
    }
}

/// Pick a shard without TLS: hash a stack-slot address. Same-thread calls
/// land on the same shard (stack addresses within a call are stable to
/// page granularity); distinct threads' stacks differ by at least a page,
/// so they spread. `shards` must be a power of two.
#[inline]
pub fn shard_index(shards: usize) -> usize {
    let probe = 0u8;
    let addr = &probe as *const u8 as usize;
    // Page-align first: slots within one frame share a shard.
    (addr >> 12) & (shards - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_index_in_range_and_stable() {
        let a = shard_index(8);
        let b = shard_index(8);
        assert!(a < 8);
        assert_eq!(a, b, "same thread must hash to the same shard");
    }
}
