//! The idle-path overhead microbenchmark gating the `obs` CI job.
//!
//! With telemetry disabled, a metric touch must cost a single `Relaxed`
//! load and a branch — the contract that makes "always-on" telemetry
//! acceptable inside EBR/QSBR hot paths. This binary measures the
//! per-touch cost of a disabled counter add, a disabled histogram
//! record, and a disabled span open, and exits non-zero when the
//! counter touch exceeds the threshold (default 1.0 ns; override with
//! `OBS_OVERHEAD_MAX_NS` for pathological CI hosts).
//!
//! Run: `cargo run --release -p rcuarray-obs --bin obs_overhead`

use rcuarray_obs::{span, LazyCounter, LazyHistogram};
use std::hint::black_box;
use std::time::Instant;

static COUNTER: LazyCounter = LazyCounter::new("obs_overhead_probe_total", "overhead probe");
static HIST: LazyHistogram = LazyHistogram::new("obs_overhead_probe_ns", "overhead probe");

const ITERS: u64 = 100_000_000;

fn time_per_op(f: impl Fn(u64)) -> f64 {
    // One warmup pass settles frequency scaling and faults in the code.
    for i in 0..ITERS / 10 {
        f(black_box(i));
    }
    let start = Instant::now();
    for i in 0..ITERS {
        f(black_box(i));
    }
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

fn main() {
    // Touch the handles once while enabled so interning cost is paid up
    // front, then measure the disabled path only.
    rcuarray_obs::enable();
    COUNTER.add(1);
    HIST.record(1);
    rcuarray_obs::disable();

    let counter_ns = time_per_op(|i| COUNTER.add(i));
    let hist_ns = time_per_op(|i| HIST.record(i));
    let span_ns = time_per_op(|_| drop(black_box(span("probe"))));

    let max_ns: f64 = std::env::var("OBS_OVERHEAD_MAX_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    println!(
        "{{\"disabled_counter_add_ns\": {counter_ns:.4}, \"disabled_histogram_record_ns\": \
         {hist_ns:.4}, \"disabled_span_ns\": {span_ns:.4}, \"threshold_ns\": {max_ns}}}"
    );

    if counter_ns > max_ns {
        eprintln!("FAIL: disabled counter touch costs {counter_ns:.4} ns > {max_ns} ns threshold");
        std::process::exit(1);
    }
    println!("OK: disabled metric touch within budget");
}
