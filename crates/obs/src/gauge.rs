//! Gauges: a point-in-time signed value (backlog depths, epoch lag,
//! capacities). Unlike counters these are set/adjusted, not summed, so a
//! single padded atomic suffices — writers of a gauge are rare.

use rcuarray_analysis::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;

/// The gauge core: one cache-line-padded signed atomic.
#[repr(align(64))]
#[derive(Default, Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below (high-watermark use).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A statically declarable gauge handle; see [`LazyCounter`]
/// (`crate::LazyCounter`) for the interning/disable contract.
pub struct LazyGauge {
    name: &'static str,
    help: &'static str,
    slot: OnceLock<&'static crate::registry::GaugeEntry>,
}

impl LazyGauge {
    /// Declare a gauge.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        LazyGauge {
            name,
            help,
            slot: OnceLock::new(),
        }
    }

    /// This handle's metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn entry(&self) -> &'static crate::registry::GaugeEntry {
        self.slot
            .get_or_init(|| crate::registry().intern_gauge(self.name, self.help))
    }

    /// Set the gauge (no-op when telemetry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.entry().core.set(v);
    }

    /// Adjust by `delta` (no-op when telemetry is disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.entry().core.add(delta);
    }

    /// Raise to `v` if below (no-op when telemetry is disabled).
    #[inline]
    pub fn set_max(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.entry().core.set_max(v);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.entry().core.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_max() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
        g.set_max(5);
        assert_eq!(g.value(), 7, "set_max must not lower");
        g.set_max(9);
        assert_eq!(g.value(), 9);
    }
}
