//! Lightweight tracing: fixed-size per-thread event rings.
//!
//! [`span`] hands out a guard that records `(name, start, duration)`
//! into the calling thread's ring when dropped. Rings are fixed-size —
//! old events are overwritten, never allocated past capacity — so
//! tracing cost is bounded regardless of run length. [`trace_events`]
//! snapshots every live thread's ring for the sinks.

use rcuarray_analysis::sync::Mutex;
use std::cell::RefCell;
use std::sync::{Arc, OnceLock, Weak};

/// Events retained per thread; older spans are overwritten ring-wise.
pub const RING_CAPACITY: usize = 256;

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Static span label.
    pub name: &'static str,
    /// Start time, nanoseconds on the obs clock ([`crate::now_ns`]).
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Small per-process thread ordinal (not the OS tid).
    pub thread: u32,
}

struct RingBuf {
    events: Vec<Event>,
    /// Next write position once `events` reached capacity.
    next: usize,
}

struct Ring {
    thread: u32,
    buf: Mutex<RingBuf>,
}

impl Ring {
    fn push(&self, mut e: Event) {
        e.thread = self.thread;
        let mut buf = self.buf.lock();
        if buf.events.len() < RING_CAPACITY {
            buf.events.push(e);
        } else {
            let at = buf.next;
            buf.events[at] = e;
            buf.next = (at + 1) % RING_CAPACITY;
        }
    }
}

/// All live rings; snapshotting prunes rings whose thread exited.
fn rings() -> &'static Mutex<Vec<Weak<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Weak<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

fn with_local_ring(f: impl FnOnce(&Ring)) {
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            static NEXT_THREAD: rcuarray_analysis::atomic::AtomicU32 =
                rcuarray_analysis::atomic::AtomicU32::new(0);
            let ring = Arc::new(Ring {
                thread: NEXT_THREAD.fetch_add(1, rcuarray_analysis::atomic::Ordering::Relaxed),
                buf: Mutex::new(RingBuf {
                    events: Vec::new(),
                    next: 0,
                }),
            });
            rings().lock().push(Arc::downgrade(&ring));
            ring
        });
        f(ring);
    });
}

/// An in-flight tracing span; records itself into the thread's ring on
/// drop.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = crate::now_ns().saturating_sub(self.start_ns);
        with_local_ring(|ring| {
            ring.push(Event {
                name: self.name,
                start_ns: self.start_ns,
                dur_ns: dur,
                thread: 0, // overwritten by the ring
            });
        });
    }
}

/// Open a tracing span named `name`. Returns `None` — after a single
/// `Relaxed` load — when telemetry is disabled, so idle cost matches the
/// metric handles.
#[inline]
pub fn span(name: &'static str) -> Option<Span> {
    if !crate::enabled() {
        return None;
    }
    Some(Span {
        name,
        start_ns: crate::now_ns(),
    })
}

/// Snapshot the spans currently held in every live thread's ring,
/// ordered by start time. Rings of exited threads are pruned.
pub fn trace_events() -> Vec<Event> {
    let mut out = Vec::new();
    let mut rings = rings().lock();
    rings.retain(|w| match w.upgrade() {
        Some(ring) => {
            out.extend(ring.buf.lock().events.iter().copied());
            true
        }
        None => false,
    });
    drop(rings);
    out.sort_by_key(|e| e.start_ns);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_ring() {
        let _flag = crate::testutil::FLAG.read();
        crate::enable();
        {
            let _s = span("test_span_records");
        }
        let events = trace_events();
        assert!(events.iter().any(|e| e.name == "test_span_records"));
    }

    #[test]
    fn disabled_span_is_none() {
        let _flag = crate::testutil::FLAG.write();
        crate::disable();
        assert!(span("nope").is_none());
        crate::enable();
    }

    #[test]
    fn ring_is_bounded() {
        let _flag = crate::testutil::FLAG.read();
        crate::enable();
        for _ in 0..RING_CAPACITY + 50 {
            let _s = span("bounded");
        }
        let mine: Vec<_> = trace_events()
            .into_iter()
            .filter(|e| e.name == "bounded")
            .collect();
        assert!(!mine.is_empty());
        assert!(mine.len() <= RING_CAPACITY);
    }

    #[test]
    fn threads_get_distinct_ordinals() {
        let _flag = crate::testutil::FLAG.read();
        crate::enable();
        let t = rcuarray_analysis::thread::spawn(|| {
            let _s = span("other_thread_span");
        });
        t.join().unwrap();
        {
            let _s = span("this_thread_span");
        }
        // The other thread's ring may already be pruned (thread exited,
        // TLS dropped the Arc); only assert when both survived.
        let events = trace_events();
        let a = events.iter().find(|e| e.name == "other_thread_span");
        let b = events.iter().find(|e| e.name == "this_thread_span");
        if let (Some(a), Some(b)) = (a, b) {
            assert_ne!(a.thread, b.thread);
        }
    }
}
