//! The global metric registry: interns statically-declared handles
//! (deduped by name) and produces point-in-time snapshots for the sinks.
//!
//! Registration is rare (once per metric per process) and goes through a
//! mutex; the hot path never touches the registry — handles cache an
//! interned `&'static` entry in a `OnceLock`.

use crate::counter::Counter;
use crate::gauge::Gauge;
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::ring::Event;
use rcuarray_analysis::sync::Mutex;
use std::sync::OnceLock;

/// An interned counter: name, help text and the sharded core.
pub struct CounterEntry {
    /// Metric name (Prometheus conventions).
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// The sharded counter core.
    pub core: Counter,
}

/// An interned gauge.
pub struct GaugeEntry {
    /// Metric name.
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// The gauge core.
    pub core: Gauge,
}

/// An interned histogram.
pub struct HistogramEntry {
    /// Metric name.
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// The histogram core.
    pub core: Histogram,
}

#[derive(Default)]
struct Inner {
    counters: Vec<&'static CounterEntry>,
    gauges: Vec<&'static GaugeEntry>,
    histograms: Vec<&'static HistogramEntry>,
}

/// The metric registry. One global instance lives behind
/// [`registry()`]; entries are interned for the process lifetime
/// (leaked), which is what lets handles hold `&'static` references with
/// no reference counting on the hot path.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry (tests; production uses [`registry()`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Intern a counter by name (first declaration wins; later handles
    /// with the same name share the metric).
    pub fn intern_counter(&self, name: &'static str, help: &'static str) -> &'static CounterEntry {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.counters.iter().find(|e| e.name == name) {
            return e;
        }
        let entry: &'static CounterEntry = Box::leak(Box::new(CounterEntry {
            name,
            help,
            core: Counter::new(),
        }));
        inner.counters.push(entry);
        entry
    }

    /// Intern a gauge by name.
    pub fn intern_gauge(&self, name: &'static str, help: &'static str) -> &'static GaugeEntry {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.gauges.iter().find(|e| e.name == name) {
            return e;
        }
        let entry: &'static GaugeEntry = Box::leak(Box::new(GaugeEntry {
            name,
            help,
            core: Gauge::new(),
        }));
        inner.gauges.push(entry);
        entry
    }

    /// Intern a histogram by name.
    pub fn intern_histogram(
        &self,
        name: &'static str,
        help: &'static str,
    ) -> &'static HistogramEntry {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.histograms.iter().find(|e| e.name == name) {
            return e;
        }
        let entry: &'static HistogramEntry = Box::leak(Box::new(HistogramEntry {
            name,
            help,
            core: Histogram::new(),
        }));
        inner.histograms.push(entry);
        entry
    }

    /// Snapshot every registered metric, sorted by name, plus the
    /// current tracing-ring contents.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        let mut metrics =
            Vec::with_capacity(inner.counters.len() + inner.gauges.len() + inner.histograms.len());
        for e in &inner.counters {
            metrics.push(MetricValue::Counter {
                name: e.name,
                help: e.help,
                value: e.core.value(),
            });
        }
        for e in &inner.gauges {
            metrics.push(MetricValue::Gauge {
                name: e.name,
                help: e.help,
                value: e.core.value(),
            });
        }
        for e in &inner.histograms {
            metrics.push(MetricValue::Histogram {
                name: e.name,
                help: e.help,
                value: e.core.snapshot(),
            });
        }
        drop(inner);
        metrics.sort_by_key(|m| m.name());
        Snapshot {
            metrics,
            spans: crate::trace_events(),
        }
    }
}

/// One metric's point-in-time value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter {
        /// Metric name.
        name: &'static str,
        /// Help text.
        help: &'static str,
        /// Current total.
        value: u64,
    },
    /// A point-in-time gauge.
    Gauge {
        /// Metric name.
        name: &'static str,
        /// Help text.
        help: &'static str,
        /// Current value.
        value: i64,
    },
    /// A log-bucketed histogram.
    Histogram {
        /// Metric name.
        name: &'static str,
        /// Help text.
        help: &'static str,
        /// Frozen contents.
        value: HistogramSnapshot,
    },
}

impl MetricValue {
    /// The metric's name.
    pub fn name(&self) -> &'static str {
        match self {
            MetricValue::Counter { name, .. }
            | MetricValue::Gauge { name, .. }
            | MetricValue::Histogram { name, .. } => name,
        }
    }
}

/// A point-in-time view of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All registered metrics, sorted by name.
    pub metrics: Vec<MetricValue>,
    /// Recent tracing spans from every thread's ring.
    pub spans: Vec<Event>,
}

impl Snapshot {
    /// Look up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find_map(|m| match m {
            MetricValue::Counter { name: n, value, .. } if *n == name => Some(*value),
            _ => None,
        })
    }

    /// Look up a gauge's value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.metrics.iter().find_map(|m| match m {
            MetricValue::Gauge { name: n, value, .. } if *n == name => Some(*value),
            _ => None,
        })
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.metrics.iter().find_map(|m| match m {
            MetricValue::Histogram { name: n, value, .. } if *n == name => Some(value),
            _ => None,
        })
    }
}

/// The process-wide registry all lazy handles intern into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes_by_name() {
        let r = Registry::new();
        let a = r.intern_counter("x_total", "x");
        let b = r.intern_counter("x_total", "other help ignored");
        assert!(std::ptr::eq(a, b));
        a.core.add(1);
        assert_eq!(b.core.value(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.intern_counter("z_total", "z").core.add(9);
        r.intern_gauge("a_gauge", "a").core.set(-2);
        let s = r.snapshot();
        let names: Vec<_> = s.metrics.iter().map(|m| m.name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(s.counter("z_total"), Some(9));
        assert_eq!(s.gauge("a_gauge"), Some(-2));
        assert_eq!(s.counter("missing"), None);
    }
}
