//! The two sinks: Prometheus text exposition (format 0.0.4) and a JSON
//! snapshot. Both are hand-rolled string builders — the workspace has no
//! serde, and the shapes here are small and fixed.

use crate::histogram::{bucket_lo, HistogramSnapshot, NUM_BUCKETS};
use crate::registry::{MetricValue, Snapshot};

/// Render a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for m in &snap.metrics {
        match m {
            MetricValue::Counter { name, help, value } => {
                header(&mut out, name, help, "counter");
                out.push_str(name);
                out.push(' ');
                out.push_str(&value.to_string());
                out.push('\n');
            }
            MetricValue::Gauge { name, help, value } => {
                header(&mut out, name, help, "gauge");
                out.push_str(name);
                out.push(' ');
                out.push_str(&value.to_string());
                out.push('\n');
            }
            MetricValue::Histogram { name, help, value } => {
                header(&mut out, name, help, "histogram");
                let mut cumulative = 0u64;
                for &(i, n) in &value.buckets {
                    cumulative += n;
                    // `le` is the bucket's inclusive upper bound: one
                    // below the next bucket's lower bound. The top
                    // bucket is covered by the +Inf line below.
                    if i + 1 < NUM_BUCKETS {
                        let le = bucket_lo(i + 1) - 1;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", value.count));
                out.push_str(&format!("{name}_sum {}\n", value.sum));
                out.push_str(&format!("{name}_count {}\n", value.count));
            }
        }
    }
    out
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Render a snapshot as a JSON object:
/// `{"counters": {..}, "gauges": {..}, "histograms": {..}, "spans": [..]}`.
pub fn to_json(snap: &Snapshot) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for m in &snap.metrics {
        match m {
            MetricValue::Counter { name, value, .. } => {
                counters.push(format!("{}: {}", json_str(name), value));
            }
            MetricValue::Gauge { name, value, .. } => {
                gauges.push(format!("{}: {}", json_str(name), value));
            }
            MetricValue::Histogram { name, value, .. } => {
                histograms.push(format!("{}: {}", json_str(name), histogram_json(value)));
            }
        }
    }
    let spans: Vec<String> = snap
        .spans
        .iter()
        .map(|e| {
            format!(
                "{{\"name\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"thread\": {}}}",
                json_str(e.name),
                e.start_ns,
                e.dur_ns,
                e.thread
            )
        })
        .collect();
    format!(
        "{{\n  \"counters\": {{{}}},\n  \"gauges\": {{{}}},\n  \"histograms\": {{{}}},\n  \"spans\": [{}]\n}}",
        counters.join(", "),
        gauges.join(", "),
        histograms.join(", "),
        spans.join(", ")
    )
}

/// One histogram as JSON, with derived quantiles for plotting.
pub fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|&(i, n)| format!("[{}, {}]", bucket_lo(i), n))
        .collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}, \"p50\": {}, \"p99\": {}, \"buckets\": [{}]}}",
        h.count,
        h.sum,
        h.max,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99),
        buckets.join(", ")
    )
}

/// Minimal JSON string quoting (names are static identifiers, but keep
/// this correct for arbitrary input anyway).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.intern_counter("ops_total", "operations").core.add(5);
        r.intern_gauge("lag", "epoch lag").core.set(-3);
        let h = r.intern_histogram("lat_ns", "latency");
        h.core.record(7);
        h.core.record(90);
        r.snapshot()
    }

    #[test]
    fn prometheus_shape() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total 5"));
        assert!(text.contains("# TYPE lag gauge"));
        assert!(text.contains("lag -3"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_sum 97"));
        assert!(text.contains("lat_ns_count 2"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(1000);
        let snap = Snapshot {
            metrics: vec![MetricValue::Histogram {
                name: "h",
                help: "h",
                value: h.snapshot(),
            }],
            spans: Vec::new(),
        };
        let text = to_prometheus(&snap);
        // The second non-empty bucket's cumulative count includes the
        // first's two records.
        assert!(text.contains("} 2\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn json_shape() {
        let json = to_json(&sample());
        assert!(json.contains("\"ops_total\": 5"));
        assert!(json.contains("\"lag\": -3"));
        assert!(json.contains("\"lat_ns\": {\"count\": 2"));
        assert!(json.contains("\"spans\": ["));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
