//! Monotonic counters: a sharded atomic core plus the statically
//! declarable lazy handle.

use crate::pad::{shard_index, Padded};
use rcuarray_analysis::atomic::Ordering;
use std::sync::OnceLock;

/// Number of cache-line-padded shards per counter (power of two). Eight
/// lines bound the footprint at 512 B per counter while spreading
/// concurrent writers; `value()` sums all shards.
pub const SHARDS: usize = 8;

/// The sharded counter core: increments land on a cache-line-padded
/// shard picked from a stack-slot address (no TLS), reads sum the
/// shards. Monotonic by construction — only `add` mutates it.
#[derive(Default, Debug)]
pub struct Counter {
    shards: [Padded; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {
            shards: [const { Padded::new() }; SHARDS],
        }
    }

    /// Add `n`. One `Relaxed` fetch-add on this thread's shard: the
    /// counter is statistical, never used for synchronization.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index(SHARDS)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total (sum over shards). Concurrent adds may or may not
    /// be included — the usual statistical-counter contract.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// A statically declarable counter handle.
///
/// ```
/// static RESIZES: rcuarray_obs::LazyCounter =
///     rcuarray_obs::LazyCounter::new("rcuarray_resizes_total", "completed resizes");
/// RESIZES.add(1);
/// ```
///
/// The first touch interns the metric in the global registry (deduped by
/// name); when telemetry is [disabled](crate::disable) every call is a
/// single `Relaxed` load and an early return.
pub struct LazyCounter {
    name: &'static str,
    help: &'static str,
    slot: OnceLock<&'static crate::registry::CounterEntry>,
}

impl LazyCounter {
    /// Declare a counter. `name` should follow Prometheus conventions
    /// (`snake_case`, `_total` suffix).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        LazyCounter {
            name,
            help,
            slot: OnceLock::new(),
        }
    }

    /// This handle's metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn entry(&self) -> &'static crate::registry::CounterEntry {
        self.slot
            .get_or_init(|| crate::registry().intern_counter(self.name, self.help))
    }

    /// Add `n` (no-op when telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.entry().core.add(n);
    }

    /// Increment by one (no-op when telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn value(&self) -> u64 {
        self.entry().core.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum() {
        let c = Counter::new();
        c.add(1);
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 40_000);
    }

    #[test]
    fn handles_with_the_same_name_share_the_metric() {
        static A: LazyCounter = LazyCounter::new("obs_counter_dedup_total", "a");
        static B: LazyCounter = LazyCounter::new("obs_counter_dedup_total", "a");
        let _flag = crate::testutil::FLAG.read();
        crate::enable();
        A.add(2);
        B.add(3);
        assert_eq!(A.value(), B.value());
        assert!(A.value() >= 5);
    }
}
