#![warn(missing_docs)]

//! # rcuarray-obs — always-on low-overhead telemetry
//!
//! The paper's whole argument is quantitative: EBR reads trail QSBR
//! because of fetch-add contention (Fig. 2), and QSBR pays for its free
//! reads with deferred-reclamation backlog. Comparing the two therefore
//! needs epoch age, retry rates and unreclaimed-memory backlog as
//! *first-class measured quantities* — that is what this crate provides,
//! cheap enough to leave on in every build.
//!
//! ## Model
//!
//! * **Statically declared handles.** Instrumented crates declare
//!   metrics as `static` [`LazyCounter`] / [`LazyGauge`] /
//!   [`LazyHistogram`] values. The first touch interns the metric in the
//!   global [`Registry`]; later touches are a pointer chase.
//! * **Sharded counters.** [`Counter`] spreads increments over
//!   cache-line-padded shards picked from a stack-slot address (the same
//!   TLS-free trick as the sharded EBR zone), so hot counters do not
//!   serialize writers on one line.
//! * **Log-bucketed histograms.** [`Histogram`] is HDR-style: 4
//!   sub-buckets per power of two over the full `u64` range, constant
//!   memory, one atomic increment per record.
//! * **Tracing rings.** [`span`] records lightweight spans into a
//!   fixed-size per-thread ring buffer; [`trace_events`] snapshots them.
//! * **One-load disabled path.** [`disable`] turns every metric touch
//!   into a single `Relaxed` load and branch (verified by the
//!   `obs_overhead` microbenchmark and the `obs` CI job).
//!
//! ## Sinks
//!
//! [`prometheus_text`] renders the classic text exposition format;
//! [`json_snapshot`] renders a JSON object. `crates/bench` embeds the
//! JSON snapshot in every `BENCH_<workload>.json` artifact.
//!
//! All atomics go through the `rcuarray_analysis` facade, so the sharded
//! core runs under the deterministic checker when built with the `check`
//! feature (see `crates/analysis/tests/obs_harness.rs`).

use rcuarray_analysis::atomic::{AtomicBool, Ordering};
use std::time::Instant;

mod counter;
mod expose;
mod gauge;
mod histogram;
mod pad;
mod registry;
mod ring;

pub use counter::{Counter, LazyCounter, SHARDS};
pub use gauge::{Gauge, LazyGauge};
pub use histogram::{
    bucket_index, bucket_lo, Histogram, HistogramSnapshot, LazyHistogram, NUM_BUCKETS, SUBS,
    SUB_BITS,
};
pub use registry::{registry, MetricValue, Registry, Snapshot};
pub use ring::{span, trace_events, Event, Span, RING_CAPACITY};

/// Global on/off switch. Telemetry is on by default ("always-on"); the
/// disabled path of every handle is this one `Relaxed` load.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable telemetry (the default).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disable telemetry: every metric touch becomes a single `Relaxed`
/// load; already-recorded values remain readable.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Nanoseconds since the first call into the obs clock (a process-wide
/// monotonic origin, used to timestamp tracing spans).
pub fn now_ns() -> u64 {
    static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Snapshot every registered metric (plus recent tracing spans).
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Render all registered metrics in the Prometheus text exposition
/// format (version 0.0.4).
pub fn prometheus_text() -> String {
    expose::to_prometheus(&snapshot())
}

/// Render all registered metrics (and recent spans) as a JSON object.
pub fn json_snapshot() -> String {
    expose::to_json(&snapshot())
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Unit tests run in parallel; tests that *toggle* the global
    //! enabled flag take this lock exclusively, tests that *depend* on
    //! it being on take it shared.
    use parking_lot::RwLock;
    pub static FLAG: RwLock<()> = RwLock::new(());
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: LazyCounter = LazyCounter::new("obs_lib_test_total", "lib test counter");
    static G: LazyGauge = LazyGauge::new("obs_lib_test_gauge", "lib test gauge");
    static H: LazyHistogram = LazyHistogram::new("obs_lib_test_hist", "lib test histogram");

    #[test]
    fn end_to_end_snapshot_contains_declared_metrics() {
        let _flag = testutil::FLAG.read();
        enable();
        C.add(3);
        G.set(-7);
        H.record(100);
        let s = snapshot();
        assert!(s
            .metrics
            .iter()
            .any(|m| matches!(m, MetricValue::Counter { name, value, .. }
                if *name == "obs_lib_test_total" && *value >= 3)));
        assert!(s
            .metrics
            .iter()
            .any(|m| matches!(m, MetricValue::Gauge { name, value, .. }
                if *name == "obs_lib_test_gauge" && *value == -7)));
        let text = prometheus_text();
        assert!(text.contains("# TYPE obs_lib_test_total counter"));
        assert!(text.contains("obs_lib_test_hist_bucket"));
        let json = json_snapshot();
        assert!(json.contains("\"obs_lib_test_gauge\""));
    }

    #[test]
    fn disabled_handles_record_nothing() {
        static D: LazyCounter = LazyCounter::new("obs_lib_disabled_total", "disabled test");
        let _flag = testutil::FLAG.write();
        enable();
        D.add(1);
        let before = D.value();
        disable();
        D.add(10);
        assert_eq!(D.value(), before, "disabled add must be dropped");
        enable();
        D.add(1);
        assert_eq!(D.value(), before + 1);
    }

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
