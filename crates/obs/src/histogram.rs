//! Log-bucketed (HDR-style) histograms.
//!
//! Values are `u64` (typically nanoseconds). Buckets cover the whole
//! range in constant memory: values below [`SUBS`] get exact unit
//! buckets; above that, each power of two is split into [`SUBS`] linear
//! sub-buckets, so relative error is bounded by `1/SUBS` everywhere.
//! Recording is one shard-free atomic increment — histograms count rare
//! events (checkpoint latencies, resize durations), not per-read ops.

use rcuarray_analysis::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Sub-bucket resolution bits: each power of two splits into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 2;

/// Sub-buckets per power of two (`2^SUB_BITS`).
pub const SUBS: usize = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`:
/// `SUBS` exact unit buckets + `(64 - SUB_BITS)` octaves × `SUBS`.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// Bucket index for a value. Total order: `bucket_index` is monotone in
/// `v` and every value maps into exactly one bucket (property-tested in
/// `tests/histogram_prop.rs`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // floor(log2 v) >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    ((exp - SUB_BITS) as usize + 1) * SUBS + sub
}

/// Inclusive lower bound of bucket `i`. Buckets are contiguous:
/// bucket `i` holds exactly `[bucket_lo(i), bucket_lo(i+1))` (the last
/// bucket is unbounded above).
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i < SUBS {
        return i as u64;
    }
    let octave = (i / SUBS) as u32; // >= 1
    let sub = (i % SUBS) as u64;
    let exp = octave - 1 + SUB_BITS;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

/// The histogram core: per-bucket atomic counts plus total count, sum
/// and max.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value: one bucket increment plus count/sum/max
    /// bookkeeping, all `Relaxed` (statistical data, no synchronization).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((i, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen histogram: sparse `(bucket index, count)` pairs plus
/// aggregates. Snapshots [merge](HistogramSnapshot::merge)
/// associatively, so per-shard or per-run histograms can be combined in
/// any grouping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Sorted, sparse `(bucket index, count)` pairs (only non-empty
    /// buckets).
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the lower bound of the
    /// bucket holding the `ceil(q * count)`-th value. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_lo(i);
            }
        }
        self.max
    }

    /// Merge two snapshots bucket-wise. Commutative and associative
    /// (property-tested), so any combination order yields the same
    /// result.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        buckets.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        buckets.push((ia, na));
                        a.next();
                    } else {
                        buckets.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    buckets.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    buckets.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
            buckets,
        }
    }
}

/// A statically declarable histogram handle; see
/// [`LazyCounter`](crate::LazyCounter) for the interning/disable
/// contract.
pub struct LazyHistogram {
    name: &'static str,
    help: &'static str,
    slot: OnceLock<&'static crate::registry::HistogramEntry>,
}

impl LazyHistogram {
    /// Declare a histogram.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        LazyHistogram {
            name,
            help,
            slot: OnceLock::new(),
        }
    }

    /// This handle's metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn entry(&self) -> &'static crate::registry::HistogramEntry {
        self.slot
            .get_or_init(|| crate::registry().intern_histogram(self.name, self.help))
    }

    /// Record a value (no-op when telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.entry().core.record(v);
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.entry().core.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUBS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
        }
    }

    #[test]
    fn bucket_lo_is_a_fixed_point_of_bucket_index() {
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn boundaries_are_contiguous() {
        for i in 0..NUM_BUCKETS - 1 {
            let next_lo = bucket_lo(i + 1);
            assert_eq!(bucket_index(next_lo - 1), i, "upper edge of bucket {i}");
            assert_eq!(bucket_index(next_lo), i + 1);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_and_aggregate() {
        let h = Histogram::new();
        for v in [1u64, 1, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1_001_007);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.quantile(0.2), 1);
        assert!(s.quantile(1.0) <= 1_000_000);
        assert!(s.quantile(1.0) >= 786_432, "p100 in the max's bucket");
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        a.record(100);
        b.record(100);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 3);
        let idx100 = bucket_index(100);
        assert!(m.buckets.contains(&(idx100, 2)));
    }
}
