//! Property tests for the log-bucketed histogram (ISSUE 3 satellite):
//! every value maps inside its bucket's bounds, bucketing is monotone,
//! and snapshot merge is associative (and commutative).

use proptest::prelude::*;
use rcuarray_obs::{bucket_index, bucket_lo, Histogram, NUM_BUCKETS};

/// Any `u64`, with the small values (where buckets are exact) and the
/// extremes (where the math can overflow) well represented.
fn values() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(u64::MAX),
        0u64..64,
        (0u32..64).prop_map(|shift| 1u64 << shift),
        (0u64..u64::MAX).prop_map(|v| v),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No value maps outside its bucket: `bucket_lo(i) <= v` and `v`
    /// is below the next bucket's lower bound (top bucket unbounded).
    #[test]
    fn value_maps_inside_its_bucket(v in values()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lo(i) <= v, "lower bound: bucket {i} lo {} > value {v}", bucket_lo(i));
        if i + 1 < NUM_BUCKETS {
            prop_assert!(v < bucket_lo(i + 1), "upper bound: value {v} >= next lo {}", bucket_lo(i + 1));
        }
    }

    /// Bucketing preserves order: a larger value never lands in a
    /// smaller bucket.
    #[test]
    fn bucketing_is_monotone(a in values(), b in values()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Merge is associative: (A ∪ B) ∪ C == A ∪ (B ∪ C), and
    /// commutative on the way.
    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(values(), 0..24),
        ys in proptest::collection::vec(values(), 0..24),
        zs in proptest::collection::vec(values(), 0..24),
    ) {
        let (ha, hb, hc) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &xs { ha.record(v); }
        for &v in &ys { hb.record(v); }
        for &v in &zs { hc.record(v); }
        let (a, b, c) = (ha.snapshot(), hb.snapshot(), hc.snapshot());

        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&a.merge(&b), &b.merge(&a));
        prop_assert_eq!(left.count, (xs.len() + ys.len() + zs.len()) as u64);
    }
}
