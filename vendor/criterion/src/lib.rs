//! Offline shim exposing the `criterion` API subset this workspace's
//! benches use.
//!
//! The build environment has no crates.io access; this shim keeps
//! `cargo bench` runnable. Each benchmark runs a short warm-up, then
//! enough iterations to fill the configured measurement time, and prints
//! `name ... mean ns/iter (throughput)` — no outlier analysis, HTML
//! reports or comparison baselines. Numbers are honest wall-clock means,
//! good enough to compare variants within one run on one machine.

use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units the measured iteration count is reported in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim treats every variant as
/// per-iteration setup excluded from timing.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batches (shim: same as PerIteration).
    SmallInput,
    /// Large batches (shim: same as PerIteration).
    LargeInput,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Measured iterations executed.
    iters: u64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: one untimed call.
        black_box(routine());
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Time `routine`, dropping its (large) output outside the timed
    /// region.
    pub fn iter_with_large_drop<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            let out = black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            drop(out);
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Run `routine(iters)` once per sample with a caller-measured
    /// duration. The shim sizes `iters` so one sample roughly fills the
    /// measurement budget, calibrating with a small probe batch.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        const PROBE: u64 = 16;
        let probe = routine(PROBE).max(Duration::from_nanos(1));
        let per_iter = probe.as_secs_f64() / PROBE as f64;
        let iters = ((self.budget.as_secs_f64() / per_iter) as u64).clamp(1, 1 << 24);
        self.elapsed += routine(iters);
        self.iters += iters;
    }

    /// Time `routine` on inputs built by `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name:<50} no iterations");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let extra = match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 * self.iters as f64 / self.elapsed.as_secs_f64();
                format!("  {:>12.0} elem/s", per_sec)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 * self.iters as f64 / self.elapsed.as_secs_f64();
                format!("  {:>12.0} B/s", per_sec)
            }
            None => String::new(),
        };
        println!(
            "{name:<50} {ns:>14.1} ns/iter ({} iters){extra}",
            self.iters
        );
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

/// The benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            settings: Settings::default(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.settings.clone(), None, f);
        self
    }
}

/// A group of benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Criterion-compatible no-op: the shim sizes by time, not samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // The real criterion spreads `d` over many samples; the shim uses
        // a fraction so full bench sweeps stay tractable.
        self.settings.measurement_time = d.min(Duration::from_secs(2));
        self
    }

    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d.min(Duration::from_millis(500));
        self
    }

    /// Declare the units one iteration processes.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.settings.clone(), self.throughput, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.settings.clone(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up pass with a tiny budget, discarded.
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        budget: settings.warm_up_time,
    };
    f(&mut warm);
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        budget: settings.measurement_time,
    };
    f(&mut b);
    b.report(name, throughput);
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(1));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 1, "routine must run repeatedly, got {calls}");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: Duration::from_millis(5),
        };
        b.iter_batched(
            || std::thread::sleep(Duration::from_micros(200)),
            |_| {},
            BatchSize::PerIteration,
        );
        // Setup slept ~200µs/iter; measured time must be far below total.
        assert!(b.elapsed < Duration::from_millis(5));
        assert!(b.iters >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("reads", 4);
        assert_eq!(id.to_string(), "reads/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
