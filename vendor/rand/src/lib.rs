//! Offline shim exposing the `rand` 0.9 API subset this workspace uses.
//!
//! Only deterministic seeded generation is needed here (benchmark index
//! streams and examples seed every generator explicitly), so the shim
//! provides `StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::random_range` over integer ranges. The core generator is
//! splitmix64 — statistically solid for workload generation, not for
//! cryptography (which the real `StdRng` documents too: it is "not
//! guaranteed to be reproducible between releases", so no caller may
//! depend on the exact stream).

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, far
                // below anything a workload generator can observe.
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e - s) as u128 + 1;
                let x = rng.next_u64() as u128;
                s + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// High-level sampling methods, `rand::Rng`-style.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`rand` 0.9's `random_range`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `u64` (`rand` 0.9's `random`).
    fn random_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, `rand`-style.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, mixing it into full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard deterministic generator (splitmix64 core).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Vigna): passes BigCrush when used as a stream.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// `rand::rngs` module shim.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = r.random_range(0..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(9);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..200 {
            match r.random_range(0u32..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = StdRng::seed_from_u64(1);
        let _: u64 = r.random_range(5..5);
    }
}
