//! Offline shim exposing the `parking_lot` API subset this workspace
//! uses, implemented on `std::sync`.
//!
//! The build environment has no access to crates.io, so the real
//! `parking_lot` cannot be fetched; this crate keeps the workspace
//! building while preserving the two semantic properties the code relies
//! on:
//!
//! * **No poisoning** — like `parking_lot` (and unlike raw `std::sync`),
//!   a panic while holding a lock leaves the lock usable. Poison errors
//!   from the underlying std primitives are unwrapped into their inner
//!   guards.
//! * **`&mut`-guard condvar waits** — `Condvar::wait` takes the guard by
//!   `&mut` rather than by value, matching `parking_lot`'s signature.
//!
//! Timed acquisition (`try_lock_for` / `try_lock_until`) is implemented
//! as bounded spin-then-yield polling over `std`'s `try_lock`; the
//! granularity is more than adequate for the simulated-cluster timeouts
//! (milliseconds) this workspace uses.

use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion lock without poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the inner guard by
    // value (std's wait consumes it) while the caller keeps `&mut self`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire, giving up after `timeout`.
    pub fn try_lock_for(&self, timeout: Duration) -> Option<MutexGuard<'_, T>> {
        self.try_lock_until(Instant::now() + timeout)
    }

    /// Acquire, giving up at `deadline`.
    pub fn try_lock_until(&self, deadline: Instant) -> Option<MutexGuard<'_, T>> {
        let mut spins = 0u32;
        loop {
            if let Some(g) = self.try_lock() {
                return Some(g);
            }
            if Instant::now() >= deadline {
                return None;
            }
            // Spin briefly, then yield so the holder can run.
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Whether any thread currently holds the lock. Inherently racy;
    /// matches `parking_lot::Mutex::is_locked` semantics closely enough
    /// for diagnostics.
    pub fn is_locked(&self) -> bool {
        match self.inner.try_lock() {
            Ok(_) => false,
            Err(std::sync::TryLockError::Poisoned(_)) => false,
            Err(std::sync::TryLockError::WouldBlock) => true,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard vacated during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard vacated during wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`] by `&mut`.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. Spurious wakeups are possible, as with any
    /// condvar; callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard vacated during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard vacated during wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new unlocked rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A parking_lot-style mutex must remain usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_for_times_out_and_succeeds() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock_for(Duration::from_millis(10)).is_none());
        drop(g);
        assert!(m.try_lock_for(Duration::from_millis(10)).is_some());
    }

    #[test]
    fn is_locked_tracks_state() {
        let m = Mutex::new(5);
        assert!(!m.is_locked());
        let g = m.lock();
        assert!(m.is_locked());
        drop(g);
        assert!(!m.is_locked());
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(15));
        assert!(res.timed_out());
        // The guard is intact after the timed-out wait.
        drop(g);
        assert!(!m.is_locked());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(1u64);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 2);
            assert!(l.try_write().is_none());
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn rwlock_survives_writer_panic() {
        let l = Arc::new(RwLock::new(0u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 0);
        *l.write() = 3;
        assert_eq!(*l.read(), 3);
    }
}
