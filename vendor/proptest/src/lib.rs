//! Offline shim exposing the `proptest` API subset this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be fetched. This shim keeps the property tests *running* (not
//! merely compiling): every `proptest!` test executes
//! `ProptestConfig::cases` generated inputs drawn from deterministic
//! per-test seeds, so failures reproduce run-to-run. What it does not do
//! is shrink counterexamples — a failing case panics with the ordinary
//! assertion message plus the case number.

pub mod strategy {
    //! Value-generation strategies (generation only, no shrink trees).

    /// Deterministic generator handed to strategies (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded deterministically.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
        #[inline]
        pub fn below(&mut self, bound: usize) -> usize {
            ((self.next_u64() as u128 * bound as u128) >> 64) as usize
        }
    }

    /// A generation strategy for values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f` (proptest's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e - s) as u128 + 1;
                    s + ((rng.next_u64() as u128 * span) >> 64) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Box a strategy for use in a heterogeneous [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between branches (proptest's `prop_oneof!`).
    pub struct Union<V> {
        branches: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over the given branches (must be non-empty).
        pub fn new(branches: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs branches");
            Union { branches }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let k = rng.below(self.branches.len());
            self.branches[k].generate(rng)
        }
    }

    /// Full-domain strategy for a primitive (the `ANY` constants).
    pub struct Any<T>(pub std::marker::PhantomData<T>);

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Strategy for Any<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for `Vec`s with length drawn from a size strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! Case scheduling for the `proptest!` macro.

    /// Execution knobs (only `cases` is honored by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the suite fast while still
            // exploring meaningfully many inputs per property.
            ProptestConfig { cases: 64 }
        }
    }

    /// Stable 64-bit FNV-1a of the test name: the per-test seed base, so
    /// each property gets its own deterministic stream.
    pub fn seed_for(name: &str, case: u32) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }
}

pub mod collection {
    //! `proptest::collection` shim.
    pub use crate::strategy::vec;
}

pub mod num {
    //! `proptest::num` shim: `ANY` constants per primitive.
    pub use crate::strategy::Any;
    pub use std::marker::PhantomData;

    /// u64 strategies.
    pub mod u64 {
        /// Any `u64`.
        pub const ANY: super::Any<u64> = super::Any(super::PhantomData);
    }
    /// u32 strategies.
    pub mod u32 {
        /// Any `u32`.
        pub const ANY: super::Any<u32> = super::Any(super::PhantomData);
    }
    /// usize strategies.
    pub mod usize {
        /// Any `usize`.
        pub const ANY: super::Any<usize> = super::Any(super::PhantomData);
    }
}

#[allow(non_snake_case)]
pub mod bool {
    //! `proptest::bool` shim.
    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// Any `bool`.
    pub const ANY: Any<std::primitive::bool> = Any(PhantomData);
}

pub mod prelude {
    //! `proptest::prelude` shim.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module alias (`prop::collection::vec`, `prop::num::…`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Assert inside a property (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// The `proptest!` test-definition macro (generation-only shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])+
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::strategy::TestRng::new(
                        $crate::test_runner::seed_for(stringify!($name), case),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut rng,
                        );
                    )+
                    // An inner closure keeps `continue`/`return` in the
                    // body scoped to the property, not the case loop.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::{Strategy, TestRng};

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn union_covers_all_branches() {
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = TestRng::new(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let s = crate::collection::vec(0u64..5, 2..7);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_round_trip(x in 0usize..100, flip in prop::bool::ANY) {
            prop_assert!(x < 100);
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn tuple_and_map(pair in ((0u64..10), (0u64..10)).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 19);
        }
    }
}
