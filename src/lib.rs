#![warn(missing_docs)]

//! # rcuarray-repro — workspace facade
//!
//! This crate re-exports the workspace's public surface so the examples
//! under `examples/` and the integration tests under `tests/` have one
//! import root. Library users should depend on the individual crates:
//!
//! * [`rcuarray`] — the paper's contribution: the parallel-safe
//!   distributed resizable array (`EbrArray`, `QsbrArray`).
//! * [`rcuarray_runtime`] — the simulated multi-locale runtime substrate.
//! * [`rcuarray_ebr`] / [`rcuarray_qsbr`] — the two reclamation schemes.
//! * [`rcuarray_rcu`] — generic RCU decoupled from the array.
//! * [`rcuarray_baselines`] — every comparator from the evaluation.
//! * [`rcuarray_service`] — the request-serving front-end (adaptive
//!   batching, admission control, SLO telemetry).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub use rcuarray;
pub use rcuarray_baselines;
pub use rcuarray_collections;
pub use rcuarray_ebr;
pub use rcuarray_obs;
pub use rcuarray_qsbr;
pub use rcuarray_rcu;
pub use rcuarray_reclaim;
pub use rcuarray_runtime;
pub use rcuarray_service;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use rcuarray::{
        AmortizedArray, Backpressure, Config, EbrArray, ElemRef, Element, LeakArray,
        PressureConfig, QsbrArray, RcuArray, ReclaimStats, Scheme, StallPolicy, DEFAULT_BLOCK_SIZE,
    };
    pub use rcuarray_baselines::{
        HazardArray, LockFreeVector, RwLockArray, SyncArray, UnsafeArray,
    };
    pub use rcuarray_collections::{DistTable, DistVector};
    pub use rcuarray_ebr::{EpochGuard, EpochZone, OrderingMode, RcuCell};
    pub use rcuarray_qsbr::QsbrDomain;
    pub use rcuarray_rcu::{EbrReclaim, QsbrReclaim, RcuList, RcuPtr, Reclaim};
    pub use rcuarray_runtime::{
        current_locale, Cluster, CollectiveKind, CommError, CommMessage, CommStats, FaultAction,
        FaultPlan, FaultStats, LatencyModel, LocaleId, MeshConfig, MeshTransport, OpKind,
        RetryPolicy, ShmemTransport, SyncVar, Topology, Transport, TransportKind,
    };
    pub use rcuarray_service::{
        slo_snapshot, Client, Request, Response, Service, ServiceConfig, SloSnapshot,
    };
}
