/root/repo/target/release/examples/distributed_table-3f3dce3f6101643e.d: examples/distributed_table.rs

/root/repo/target/release/examples/distributed_table-3f3dce3f6101643e: examples/distributed_table.rs

examples/distributed_table.rs:
