/root/repo/target/release/examples/verify_protocols-85521a62b1b1e726.d: examples/verify_protocols.rs

/root/repo/target/release/examples/verify_protocols-85521a62b1b1e726: examples/verify_protocols.rs

examples/verify_protocols.rs:
