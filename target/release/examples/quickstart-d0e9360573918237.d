/root/repo/target/release/examples/quickstart-d0e9360573918237.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d0e9360573918237: examples/quickstart.rs

examples/quickstart.rs:
