/root/repo/target/release/examples/telemetry_histogram-0bb022dd2dd6e74b.d: examples/telemetry_histogram.rs

/root/repo/target/release/examples/telemetry_histogram-0bb022dd2dd6e74b: examples/telemetry_histogram.rs

examples/telemetry_histogram.rs:
