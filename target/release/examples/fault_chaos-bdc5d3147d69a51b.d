/root/repo/target/release/examples/fault_chaos-bdc5d3147d69a51b.d: examples/fault_chaos.rs

/root/repo/target/release/examples/fault_chaos-bdc5d3147d69a51b: examples/fault_chaos.rs

examples/fault_chaos.rs:
