/root/repo/target/release/examples/distributed_vector-f14a228ad3b965aa.d: examples/distributed_vector.rs

/root/repo/target/release/examples/distributed_vector-f14a228ad3b965aa: examples/distributed_vector.rs

examples/distributed_vector.rs:
