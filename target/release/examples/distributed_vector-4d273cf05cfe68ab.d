/root/repo/target/release/examples/distributed_vector-4d273cf05cfe68ab.d: examples/distributed_vector.rs

/root/repo/target/release/examples/distributed_vector-4d273cf05cfe68ab: examples/distributed_vector.rs

examples/distributed_vector.rs:
