/root/repo/target/release/examples/config_hot_reload-3b5e9ce0a6c8860f.d: examples/config_hot_reload.rs

/root/repo/target/release/examples/config_hot_reload-3b5e9ce0a6c8860f: examples/config_hot_reload.rs

examples/config_hot_reload.rs:
