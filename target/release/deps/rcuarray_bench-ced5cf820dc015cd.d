/root/repo/target/release/deps/rcuarray_bench-ced5cf820dc015cd.d: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/librcuarray_bench-ced5cf820dc015cd.rlib: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/librcuarray_bench-ced5cf820dc015cd.rmeta: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/arrays.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/workload.rs:
