/root/repo/target/release/deps/rcuarray_repro-5de159512f700d76.d: src/lib.rs

/root/repo/target/release/deps/rcuarray_repro-5de159512f700d76: src/lib.rs

src/lib.rs:
