/root/repo/target/release/deps/ablation_ordering-f819ac474f13e6bc.d: crates/bench/benches/ablation_ordering.rs

/root/repo/target/release/deps/ablation_ordering-f819ac474f13e6bc: crates/bench/benches/ablation_ordering.rs

crates/bench/benches/ablation_ordering.rs:
