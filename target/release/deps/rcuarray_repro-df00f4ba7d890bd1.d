/root/repo/target/release/deps/rcuarray_repro-df00f4ba7d890bd1.d: src/lib.rs

/root/repo/target/release/deps/librcuarray_repro-df00f4ba7d890bd1.rlib: src/lib.rs

/root/repo/target/release/deps/librcuarray_repro-df00f4ba7d890bd1.rmeta: src/lib.rs

src/lib.rs:
