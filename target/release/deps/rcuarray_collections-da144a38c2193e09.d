/root/repo/target/release/deps/rcuarray_collections-da144a38c2193e09.d: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/release/deps/librcuarray_collections-da144a38c2193e09.rlib: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/release/deps/librcuarray_collections-da144a38c2193e09.rmeta: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

crates/collections/src/lib.rs:
crates/collections/src/dist_table.rs:
crates/collections/src/dist_vector.rs:
