/root/repo/target/release/deps/rcuarray_rcu-4a33361b778d3fb6.d: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

/root/repo/target/release/deps/librcuarray_rcu-4a33361b778d3fb6.rlib: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

/root/repo/target/release/deps/librcuarray_rcu-4a33361b778d3fb6.rmeta: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

crates/rcu/src/lib.rs:
crates/rcu/src/list.rs:
crates/rcu/src/rcu_ptr.rs:
crates/rcu/src/reclaimer.rs:
