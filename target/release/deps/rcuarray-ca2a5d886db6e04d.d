/root/repo/target/release/deps/rcuarray-ca2a5d886db6e04d.d: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/element.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs

/root/repo/target/release/deps/librcuarray-ca2a5d886db6e04d.rlib: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/element.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs

/root/repo/target/release/deps/librcuarray-ca2a5d886db6e04d.rmeta: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/element.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs

crates/rcuarray/src/lib.rs:
crates/rcuarray/src/array.rs:
crates/rcuarray/src/block.rs:
crates/rcuarray/src/config.rs:
crates/rcuarray/src/elem_ref.rs:
crates/rcuarray/src/element.rs:
crates/rcuarray/src/handle.rs:
crates/rcuarray/src/iter.rs:
crates/rcuarray/src/scheme.rs:
crates/rcuarray/src/snapshot.rs:
crates/rcuarray/src/stats.rs:
