/root/repo/target/release/deps/rcuarray_model-45606b508d4f4896.d: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

/root/repo/target/release/deps/librcuarray_model-45606b508d4f4896.rlib: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

/root/repo/target/release/deps/librcuarray_model-45606b508d4f4896.rmeta: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

crates/model/src/lib.rs:
crates/model/src/ebr_model.rs:
crates/model/src/explorer.rs:
crates/model/src/qsbr_model.rs:
