/root/repo/target/release/deps/rcuarray_runtime-9a03b1248e8cc721.d: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs

/root/repo/target/release/deps/librcuarray_runtime-9a03b1248e8cc721.rlib: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs

/root/repo/target/release/deps/librcuarray_runtime-9a03b1248e8cc721.rmeta: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs

crates/runtime/src/lib.rs:
crates/runtime/src/collectives.rs:
crates/runtime/src/comm.rs:
crates/runtime/src/dist.rs:
crates/runtime/src/fault.rs:
crates/runtime/src/global_lock.rs:
crates/runtime/src/locale.rs:
crates/runtime/src/privatization.rs:
crates/runtime/src/sync_var.rs:
crates/runtime/src/task.rs:
crates/runtime/src/topology.rs:
