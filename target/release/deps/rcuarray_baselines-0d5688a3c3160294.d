/root/repo/target/release/deps/rcuarray_baselines-0d5688a3c3160294.d: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

/root/repo/target/release/deps/librcuarray_baselines-0d5688a3c3160294.rlib: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

/root/repo/target/release/deps/librcuarray_baselines-0d5688a3c3160294.rmeta: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

crates/baselines/src/lib.rs:
crates/baselines/src/hazard.rs:
crates/baselines/src/lockfree_vector.rs:
crates/baselines/src/rwlock_array.rs:
crates/baselines/src/sync_array.rs:
crates/baselines/src/unsafe_array.rs:
