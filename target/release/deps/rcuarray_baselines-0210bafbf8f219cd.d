/root/repo/target/release/deps/rcuarray_baselines-0210bafbf8f219cd.d: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

/root/repo/target/release/deps/librcuarray_baselines-0210bafbf8f219cd.rlib: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

/root/repo/target/release/deps/librcuarray_baselines-0210bafbf8f219cd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

crates/baselines/src/lib.rs:
crates/baselines/src/hazard.rs:
crates/baselines/src/lockfree_vector.rs:
crates/baselines/src/rwlock_array.rs:
crates/baselines/src/sync_array.rs:
crates/baselines/src/unsafe_array.rs:
