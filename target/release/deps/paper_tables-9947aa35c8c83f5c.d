/root/repo/target/release/deps/paper_tables-9947aa35c8c83f5c.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/release/deps/paper_tables-9947aa35c8c83f5c: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
