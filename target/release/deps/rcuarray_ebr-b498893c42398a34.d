/root/repo/target/release/deps/rcuarray_ebr-b498893c42398a34.d: crates/ebr/src/lib.rs crates/ebr/src/backoff.rs crates/ebr/src/epoch.rs crates/ebr/src/guard.rs crates/ebr/src/ordering.rs crates/ebr/src/rcu_cell.rs crates/ebr/src/sharded.rs

/root/repo/target/release/deps/librcuarray_ebr-b498893c42398a34.rlib: crates/ebr/src/lib.rs crates/ebr/src/backoff.rs crates/ebr/src/epoch.rs crates/ebr/src/guard.rs crates/ebr/src/ordering.rs crates/ebr/src/rcu_cell.rs crates/ebr/src/sharded.rs

/root/repo/target/release/deps/librcuarray_ebr-b498893c42398a34.rmeta: crates/ebr/src/lib.rs crates/ebr/src/backoff.rs crates/ebr/src/epoch.rs crates/ebr/src/guard.rs crates/ebr/src/ordering.rs crates/ebr/src/rcu_cell.rs crates/ebr/src/sharded.rs

crates/ebr/src/lib.rs:
crates/ebr/src/backoff.rs:
crates/ebr/src/epoch.rs:
crates/ebr/src/guard.rs:
crates/ebr/src/ordering.rs:
crates/ebr/src/rcu_cell.rs:
crates/ebr/src/sharded.rs:
