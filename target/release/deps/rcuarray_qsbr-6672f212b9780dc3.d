/root/repo/target/release/deps/rcuarray_qsbr-6672f212b9780dc3.d: crates/qsbr/src/lib.rs crates/qsbr/src/defer_list.rs crates/qsbr/src/domain.rs crates/qsbr/src/record.rs crates/qsbr/src/registry.rs crates/qsbr/src/state.rs

/root/repo/target/release/deps/librcuarray_qsbr-6672f212b9780dc3.rlib: crates/qsbr/src/lib.rs crates/qsbr/src/defer_list.rs crates/qsbr/src/domain.rs crates/qsbr/src/record.rs crates/qsbr/src/registry.rs crates/qsbr/src/state.rs

/root/repo/target/release/deps/librcuarray_qsbr-6672f212b9780dc3.rmeta: crates/qsbr/src/lib.rs crates/qsbr/src/defer_list.rs crates/qsbr/src/domain.rs crates/qsbr/src/record.rs crates/qsbr/src/registry.rs crates/qsbr/src/state.rs

crates/qsbr/src/lib.rs:
crates/qsbr/src/defer_list.rs:
crates/qsbr/src/domain.rs:
crates/qsbr/src/record.rs:
crates/qsbr/src/registry.rs:
crates/qsbr/src/state.rs:
