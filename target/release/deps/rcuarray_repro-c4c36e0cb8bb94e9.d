/root/repo/target/release/deps/rcuarray_repro-c4c36e0cb8bb94e9.d: src/lib.rs

/root/repo/target/release/deps/librcuarray_repro-c4c36e0cb8bb94e9.rlib: src/lib.rs

/root/repo/target/release/deps/librcuarray_repro-c4c36e0cb8bb94e9.rmeta: src/lib.rs

src/lib.rs:
