/root/repo/target/release/deps/rcuarray_collections-6981207b243e249e.d: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/release/deps/librcuarray_collections-6981207b243e249e.rlib: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/release/deps/librcuarray_collections-6981207b243e249e.rmeta: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

crates/collections/src/lib.rs:
crates/collections/src/dist_table.rs:
crates/collections/src/dist_vector.rs:
