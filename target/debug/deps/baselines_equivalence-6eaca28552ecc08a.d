/root/repo/target/debug/deps/baselines_equivalence-6eaca28552ecc08a.d: tests/baselines_equivalence.rs

/root/repo/target/debug/deps/baselines_equivalence-6eaca28552ecc08a: tests/baselines_equivalence.rs

tests/baselines_equivalence.rs:
