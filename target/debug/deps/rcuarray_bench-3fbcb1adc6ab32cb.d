/root/repo/target/debug/deps/rcuarray_bench-3fbcb1adc6ab32cb.d: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/rcuarray_bench-3fbcb1adc6ab32cb: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/arrays.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/workload.rs:
