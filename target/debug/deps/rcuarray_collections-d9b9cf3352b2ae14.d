/root/repo/target/debug/deps/rcuarray_collections-d9b9cf3352b2ae14.d: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/debug/deps/librcuarray_collections-d9b9cf3352b2ae14.rmeta: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

crates/collections/src/lib.rs:
crates/collections/src/dist_table.rs:
crates/collections/src/dist_vector.rs:
