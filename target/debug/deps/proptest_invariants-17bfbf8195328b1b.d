/root/repo/target/debug/deps/proptest_invariants-17bfbf8195328b1b.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-17bfbf8195328b1b: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
