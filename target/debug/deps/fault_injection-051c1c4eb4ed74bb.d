/root/repo/target/debug/deps/fault_injection-051c1c4eb4ed74bb.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-051c1c4eb4ed74bb: tests/fault_injection.rs

tests/fault_injection.rs:
