/root/repo/target/debug/deps/rcuarray_model-5ab5501ef8fce537.d: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

/root/repo/target/debug/deps/rcuarray_model-5ab5501ef8fce537: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

crates/model/src/lib.rs:
crates/model/src/ebr_model.rs:
crates/model/src/explorer.rs:
crates/model/src/qsbr_model.rs:
