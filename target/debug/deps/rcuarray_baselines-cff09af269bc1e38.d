/root/repo/target/debug/deps/rcuarray_baselines-cff09af269bc1e38.d: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

/root/repo/target/debug/deps/librcuarray_baselines-cff09af269bc1e38.rmeta: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

crates/baselines/src/lib.rs:
crates/baselines/src/hazard.rs:
crates/baselines/src/lockfree_vector.rs:
crates/baselines/src/rwlock_array.rs:
crates/baselines/src/sync_array.rs:
crates/baselines/src/unsafe_array.rs:
