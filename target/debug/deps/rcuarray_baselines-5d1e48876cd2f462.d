/root/repo/target/debug/deps/rcuarray_baselines-5d1e48876cd2f462.d: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

/root/repo/target/debug/deps/rcuarray_baselines-5d1e48876cd2f462: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

crates/baselines/src/lib.rs:
crates/baselines/src/hazard.rs:
crates/baselines/src/lockfree_vector.rs:
crates/baselines/src/rwlock_array.rs:
crates/baselines/src/sync_array.rs:
crates/baselines/src/unsafe_array.rs:
