/root/repo/target/debug/deps/cell_model-3fd6f56a3aa1c06e.d: crates/ebr/tests/cell_model.rs

/root/repo/target/debug/deps/cell_model-3fd6f56a3aa1c06e: crates/ebr/tests/cell_model.rs

crates/ebr/tests/cell_model.rs:
