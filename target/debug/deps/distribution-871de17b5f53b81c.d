/root/repo/target/debug/deps/distribution-871de17b5f53b81c.d: tests/distribution.rs

/root/repo/target/debug/deps/distribution-871de17b5f53b81c: tests/distribution.rs

tests/distribution.rs:
