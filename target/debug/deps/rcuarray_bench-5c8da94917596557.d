/root/repo/target/debug/deps/rcuarray_bench-5c8da94917596557.d: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/librcuarray_bench-5c8da94917596557.rmeta: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/arrays.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/workload.rs:
