/root/repo/target/debug/deps/rcuarray-8e62861d15ebddd8.d: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/element.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray-8e62861d15ebddd8.rmeta: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/element.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs Cargo.toml

crates/rcuarray/src/lib.rs:
crates/rcuarray/src/array.rs:
crates/rcuarray/src/block.rs:
crates/rcuarray/src/config.rs:
crates/rcuarray/src/elem_ref.rs:
crates/rcuarray/src/element.rs:
crates/rcuarray/src/handle.rs:
crates/rcuarray/src/iter.rs:
crates/rcuarray/src/scheme.rs:
crates/rcuarray/src/snapshot.rs:
crates/rcuarray/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
