/root/repo/target/debug/deps/rcuarray_runtime-d1c6779e1475ddcc.d: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs

/root/repo/target/debug/deps/librcuarray_runtime-d1c6779e1475ddcc.rmeta: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs

crates/runtime/src/lib.rs:
crates/runtime/src/collectives.rs:
crates/runtime/src/comm.rs:
crates/runtime/src/dist.rs:
crates/runtime/src/fault.rs:
crates/runtime/src/global_lock.rs:
crates/runtime/src/locale.rs:
crates/runtime/src/privatization.rs:
crates/runtime/src/sync_var.rs:
crates/runtime/src/task.rs:
crates/runtime/src/topology.rs:
