/root/repo/target/debug/deps/rcuarray_baselines-9b61fc857fae989a.d: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_baselines-9b61fc857fae989a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/hazard.rs:
crates/baselines/src/lockfree_vector.rs:
crates/baselines/src/rwlock_array.rs:
crates/baselines/src/sync_array.rs:
crates/baselines/src/unsafe_array.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
