/root/repo/target/debug/deps/paper_tables-c815c70ca3dfc79a.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-c815c70ca3dfc79a: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
