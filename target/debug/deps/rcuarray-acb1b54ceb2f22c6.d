/root/repo/target/debug/deps/rcuarray-acb1b54ceb2f22c6.d: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/element.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs

/root/repo/target/debug/deps/librcuarray-acb1b54ceb2f22c6.rmeta: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/element.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs

crates/rcuarray/src/lib.rs:
crates/rcuarray/src/array.rs:
crates/rcuarray/src/block.rs:
crates/rcuarray/src/config.rs:
crates/rcuarray/src/elem_ref.rs:
crates/rcuarray/src/element.rs:
crates/rcuarray/src/handle.rs:
crates/rcuarray/src/iter.rs:
crates/rcuarray/src/scheme.rs:
crates/rcuarray/src/snapshot.rs:
crates/rcuarray/src/stats.rs:
