/root/repo/target/debug/deps/rcuarray_qsbr-d06f6671e79b8a94.d: crates/qsbr/src/lib.rs crates/qsbr/src/defer_list.rs crates/qsbr/src/domain.rs crates/qsbr/src/record.rs crates/qsbr/src/registry.rs crates/qsbr/src/state.rs

/root/repo/target/debug/deps/rcuarray_qsbr-d06f6671e79b8a94: crates/qsbr/src/lib.rs crates/qsbr/src/defer_list.rs crates/qsbr/src/domain.rs crates/qsbr/src/record.rs crates/qsbr/src/registry.rs crates/qsbr/src/state.rs

crates/qsbr/src/lib.rs:
crates/qsbr/src/defer_list.rs:
crates/qsbr/src/domain.rs:
crates/qsbr/src/record.rs:
crates/qsbr/src/registry.rs:
crates/qsbr/src/state.rs:
