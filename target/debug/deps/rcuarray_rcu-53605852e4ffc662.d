/root/repo/target/debug/deps/rcuarray_rcu-53605852e4ffc662.d: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

/root/repo/target/debug/deps/librcuarray_rcu-53605852e4ffc662.rlib: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

/root/repo/target/debug/deps/librcuarray_rcu-53605852e4ffc662.rmeta: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

crates/rcu/src/lib.rs:
crates/rcu/src/list.rs:
crates/rcu/src/rcu_ptr.rs:
crates/rcu/src/reclaimer.rs:
