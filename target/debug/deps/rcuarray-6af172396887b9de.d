/root/repo/target/debug/deps/rcuarray-6af172396887b9de.d: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/element.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs

/root/repo/target/debug/deps/librcuarray-6af172396887b9de.rlib: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/element.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs

/root/repo/target/debug/deps/librcuarray-6af172396887b9de.rmeta: crates/rcuarray/src/lib.rs crates/rcuarray/src/array.rs crates/rcuarray/src/block.rs crates/rcuarray/src/config.rs crates/rcuarray/src/element.rs crates/rcuarray/src/elem_ref.rs crates/rcuarray/src/handle.rs crates/rcuarray/src/iter.rs crates/rcuarray/src/scheme.rs crates/rcuarray/src/snapshot.rs crates/rcuarray/src/stats.rs

crates/rcuarray/src/lib.rs:
crates/rcuarray/src/array.rs:
crates/rcuarray/src/block.rs:
crates/rcuarray/src/config.rs:
crates/rcuarray/src/element.rs:
crates/rcuarray/src/elem_ref.rs:
crates/rcuarray/src/handle.rs:
crates/rcuarray/src/iter.rs:
crates/rcuarray/src/scheme.rs:
crates/rcuarray/src/snapshot.rs:
crates/rcuarray/src/stats.rs:
