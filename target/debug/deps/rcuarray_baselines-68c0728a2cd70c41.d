/root/repo/target/debug/deps/rcuarray_baselines-68c0728a2cd70c41.d: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

/root/repo/target/debug/deps/rcuarray_baselines-68c0728a2cd70c41: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

crates/baselines/src/lib.rs:
crates/baselines/src/hazard.rs:
crates/baselines/src/lockfree_vector.rs:
crates/baselines/src/rwlock_array.rs:
crates/baselines/src/sync_array.rs:
crates/baselines/src/unsafe_array.rs:
