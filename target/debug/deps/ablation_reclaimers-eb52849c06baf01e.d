/root/repo/target/debug/deps/ablation_reclaimers-eb52849c06baf01e.d: crates/bench/benches/ablation_reclaimers.rs

/root/repo/target/debug/deps/libablation_reclaimers-eb52849c06baf01e.rmeta: crates/bench/benches/ablation_reclaimers.rs

crates/bench/benches/ablation_reclaimers.rs:
