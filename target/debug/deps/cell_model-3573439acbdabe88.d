/root/repo/target/debug/deps/cell_model-3573439acbdabe88.d: crates/ebr/tests/cell_model.rs Cargo.toml

/root/repo/target/debug/deps/libcell_model-3573439acbdabe88.rmeta: crates/ebr/tests/cell_model.rs Cargo.toml

crates/ebr/tests/cell_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
