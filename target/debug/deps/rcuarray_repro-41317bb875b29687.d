/root/repo/target/debug/deps/rcuarray_repro-41317bb875b29687.d: src/lib.rs

/root/repo/target/debug/deps/librcuarray_repro-41317bb875b29687.rmeta: src/lib.rs

src/lib.rs:
