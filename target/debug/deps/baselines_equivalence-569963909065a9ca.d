/root/repo/target/debug/deps/baselines_equivalence-569963909065a9ca.d: tests/baselines_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines_equivalence-569963909065a9ca.rmeta: tests/baselines_equivalence.rs Cargo.toml

tests/baselines_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
