/root/repo/target/debug/deps/cross_scheme-f47d473634ad75c2.d: tests/cross_scheme.rs

/root/repo/target/debug/deps/libcross_scheme-f47d473634ad75c2.rmeta: tests/cross_scheme.rs

tests/cross_scheme.rs:
