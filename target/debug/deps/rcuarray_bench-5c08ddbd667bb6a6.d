/root/repo/target/debug/deps/rcuarray_bench-5c08ddbd667bb6a6.d: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/librcuarray_bench-5c08ddbd667bb6a6.rlib: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/librcuarray_bench-5c08ddbd667bb6a6.rmeta: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/arrays.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/workload.rs:
