/root/repo/target/debug/deps/churn-647d7e642dc64a92.d: crates/qsbr/tests/churn.rs

/root/repo/target/debug/deps/libchurn-647d7e642dc64a92.rmeta: crates/qsbr/tests/churn.rs

crates/qsbr/tests/churn.rs:
