/root/repo/target/debug/deps/reclamation-32c0c9785fbde261.d: tests/reclamation.rs

/root/repo/target/debug/deps/reclamation-32c0c9785fbde261: tests/reclamation.rs

tests/reclamation.rs:
