/root/repo/target/debug/deps/baselines_equivalence-fdc5acaa7c2661c1.d: tests/baselines_equivalence.rs

/root/repo/target/debug/deps/libbaselines_equivalence-fdc5acaa7c2661c1.rmeta: tests/baselines_equivalence.rs

tests/baselines_equivalence.rs:
