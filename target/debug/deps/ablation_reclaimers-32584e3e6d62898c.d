/root/repo/target/debug/deps/ablation_reclaimers-32584e3e6d62898c.d: crates/bench/benches/ablation_reclaimers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_reclaimers-32584e3e6d62898c.rmeta: crates/bench/benches/ablation_reclaimers.rs Cargo.toml

crates/bench/benches/ablation_reclaimers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
