/root/repo/target/debug/deps/rcuarray_model-4d067dc8a31bf4e4.d: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_model-4d067dc8a31bf4e4.rmeta: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/ebr_model.rs:
crates/model/src/explorer.rs:
crates/model/src/qsbr_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
