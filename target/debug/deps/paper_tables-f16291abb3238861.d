/root/repo/target/debug/deps/paper_tables-f16291abb3238861.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/libpaper_tables-f16291abb3238861.rmeta: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
