/root/repo/target/debug/deps/rcuarray_collections-03af928cc27725ce.d: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/debug/deps/rcuarray_collections-03af928cc27725ce: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

crates/collections/src/lib.rs:
crates/collections/src/dist_table.rs:
crates/collections/src/dist_vector.rs:
