/root/repo/target/debug/deps/ablation_clone-2051bfaf5b3a0597.d: crates/bench/benches/ablation_clone.rs Cargo.toml

/root/repo/target/debug/deps/libablation_clone-2051bfaf5b3a0597.rmeta: crates/bench/benches/ablation_clone.rs Cargo.toml

crates/bench/benches/ablation_clone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
