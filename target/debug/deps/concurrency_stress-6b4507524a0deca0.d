/root/repo/target/debug/deps/concurrency_stress-6b4507524a0deca0.d: tests/concurrency_stress.rs

/root/repo/target/debug/deps/libconcurrency_stress-6b4507524a0deca0.rmeta: tests/concurrency_stress.rs

tests/concurrency_stress.rs:
