/root/repo/target/debug/deps/reclamation-f6c2b6137cd2fff5.d: tests/reclamation.rs Cargo.toml

/root/repo/target/debug/deps/libreclamation-f6c2b6137cd2fff5.rmeta: tests/reclamation.rs Cargo.toml

tests/reclamation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
