/root/repo/target/debug/deps/concurrency_stress-ed235c2b8854f0c6.d: tests/concurrency_stress.rs

/root/repo/target/debug/deps/concurrency_stress-ed235c2b8854f0c6: tests/concurrency_stress.rs

tests/concurrency_stress.rs:
