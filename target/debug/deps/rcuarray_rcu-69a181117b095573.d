/root/repo/target/debug/deps/rcuarray_rcu-69a181117b095573.d: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_rcu-69a181117b095573.rmeta: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs Cargo.toml

crates/rcu/src/lib.rs:
crates/rcu/src/list.rs:
crates/rcu/src/rcu_ptr.rs:
crates/rcu/src/reclaimer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
