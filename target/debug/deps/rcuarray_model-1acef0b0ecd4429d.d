/root/repo/target/debug/deps/rcuarray_model-1acef0b0ecd4429d.d: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

/root/repo/target/debug/deps/librcuarray_model-1acef0b0ecd4429d.rmeta: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

crates/model/src/lib.rs:
crates/model/src/ebr_model.rs:
crates/model/src/explorer.rs:
crates/model/src/qsbr_model.rs:
