/root/repo/target/debug/deps/rcuarray_baselines-2e86574cc391785d.d: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

/root/repo/target/debug/deps/librcuarray_baselines-2e86574cc391785d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/hazard.rs crates/baselines/src/lockfree_vector.rs crates/baselines/src/rwlock_array.rs crates/baselines/src/sync_array.rs crates/baselines/src/unsafe_array.rs

crates/baselines/src/lib.rs:
crates/baselines/src/hazard.rs:
crates/baselines/src/lockfree_vector.rs:
crates/baselines/src/rwlock_array.rs:
crates/baselines/src/sync_array.rs:
crates/baselines/src/unsafe_array.rs:
