/root/repo/target/debug/deps/rcuarray_ebr-ae587c4f7d41884e.d: crates/ebr/src/lib.rs crates/ebr/src/backoff.rs crates/ebr/src/epoch.rs crates/ebr/src/guard.rs crates/ebr/src/ordering.rs crates/ebr/src/rcu_cell.rs crates/ebr/src/sharded.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_ebr-ae587c4f7d41884e.rmeta: crates/ebr/src/lib.rs crates/ebr/src/backoff.rs crates/ebr/src/epoch.rs crates/ebr/src/guard.rs crates/ebr/src/ordering.rs crates/ebr/src/rcu_cell.rs crates/ebr/src/sharded.rs Cargo.toml

crates/ebr/src/lib.rs:
crates/ebr/src/backoff.rs:
crates/ebr/src/epoch.rs:
crates/ebr/src/guard.rs:
crates/ebr/src/ordering.rs:
crates/ebr/src/rcu_cell.rs:
crates/ebr/src/sharded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
