/root/repo/target/debug/deps/cross_scheme-7a95e01873841f93.d: tests/cross_scheme.rs

/root/repo/target/debug/deps/cross_scheme-7a95e01873841f93: tests/cross_scheme.rs

tests/cross_scheme.rs:
