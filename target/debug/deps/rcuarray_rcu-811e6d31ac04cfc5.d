/root/repo/target/debug/deps/rcuarray_rcu-811e6d31ac04cfc5.d: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_rcu-811e6d31ac04cfc5.rmeta: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs Cargo.toml

crates/rcu/src/lib.rs:
crates/rcu/src/list.rs:
crates/rcu/src/rcu_ptr.rs:
crates/rcu/src/reclaimer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
