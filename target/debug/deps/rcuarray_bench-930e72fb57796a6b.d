/root/repo/target/debug/deps/rcuarray_bench-930e72fb57796a6b.d: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/librcuarray_bench-930e72fb57796a6b.rlib: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/librcuarray_bench-930e72fb57796a6b.rmeta: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/arrays.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/workload.rs:
