/root/repo/target/debug/deps/paper_tables-c084b9a7e8334590.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-c084b9a7e8334590: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
