/root/repo/target/debug/deps/parking_lot-2507830824cb9bd5.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-2507830824cb9bd5.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
