/root/repo/target/debug/deps/reclamation-91f84df5c48c258a.d: tests/reclamation.rs

/root/repo/target/debug/deps/reclamation-91f84df5c48c258a: tests/reclamation.rs

tests/reclamation.rs:
