/root/repo/target/debug/deps/ablation_vector-e4b3a4f67aecc220.d: crates/bench/benches/ablation_vector.rs Cargo.toml

/root/repo/target/debug/deps/libablation_vector-e4b3a4f67aecc220.rmeta: crates/bench/benches/ablation_vector.rs Cargo.toml

crates/bench/benches/ablation_vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
