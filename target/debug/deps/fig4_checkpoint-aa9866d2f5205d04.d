/root/repo/target/debug/deps/fig4_checkpoint-aa9866d2f5205d04.d: crates/bench/benches/fig4_checkpoint.rs

/root/repo/target/debug/deps/libfig4_checkpoint-aa9866d2f5205d04.rmeta: crates/bench/benches/fig4_checkpoint.rs

crates/bench/benches/fig4_checkpoint.rs:
