/root/repo/target/debug/deps/rcuarray_collections-e585f077d635971b.d: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/debug/deps/librcuarray_collections-e585f077d635971b.rlib: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/debug/deps/librcuarray_collections-e585f077d635971b.rmeta: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

crates/collections/src/lib.rs:
crates/collections/src/dist_table.rs:
crates/collections/src/dist_vector.rs:
