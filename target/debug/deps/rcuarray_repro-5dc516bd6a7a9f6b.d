/root/repo/target/debug/deps/rcuarray_repro-5dc516bd6a7a9f6b.d: src/lib.rs

/root/repo/target/debug/deps/librcuarray_repro-5dc516bd6a7a9f6b.rmeta: src/lib.rs

src/lib.rs:
