/root/repo/target/debug/deps/ablation_blocksize-46100a4504be47f5.d: crates/bench/benches/ablation_blocksize.rs

/root/repo/target/debug/deps/libablation_blocksize-46100a4504be47f5.rmeta: crates/bench/benches/ablation_blocksize.rs

crates/bench/benches/ablation_blocksize.rs:
