/root/repo/target/debug/deps/rcuarray_rcu-40464d589274624b.d: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

/root/repo/target/debug/deps/rcuarray_rcu-40464d589274624b: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

crates/rcu/src/lib.rs:
crates/rcu/src/list.rs:
crates/rcu/src/rcu_ptr.rs:
crates/rcu/src/reclaimer.rs:
