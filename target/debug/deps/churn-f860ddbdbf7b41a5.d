/root/repo/target/debug/deps/churn-f860ddbdbf7b41a5.d: crates/qsbr/tests/churn.rs Cargo.toml

/root/repo/target/debug/deps/libchurn-f860ddbdbf7b41a5.rmeta: crates/qsbr/tests/churn.rs Cargo.toml

crates/qsbr/tests/churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
