/root/repo/target/debug/deps/rcuarray_collections-ee94d5f5e261fd6f.d: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/debug/deps/rcuarray_collections-ee94d5f5e261fd6f: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

crates/collections/src/lib.rs:
crates/collections/src/dist_table.rs:
crates/collections/src/dist_vector.rs:
