/root/repo/target/debug/deps/rcuarray_runtime-f5f054ae33ef1d51.d: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_runtime-f5f054ae33ef1d51.rmeta: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/collectives.rs:
crates/runtime/src/comm.rs:
crates/runtime/src/dist.rs:
crates/runtime/src/fault.rs:
crates/runtime/src/global_lock.rs:
crates/runtime/src/locale.rs:
crates/runtime/src/privatization.rs:
crates/runtime/src/sync_var.rs:
crates/runtime/src/task.rs:
crates/runtime/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
