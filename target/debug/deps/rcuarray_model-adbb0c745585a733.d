/root/repo/target/debug/deps/rcuarray_model-adbb0c745585a733.d: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

/root/repo/target/debug/deps/librcuarray_model-adbb0c745585a733.rmeta: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

crates/model/src/lib.rs:
crates/model/src/ebr_model.rs:
crates/model/src/explorer.rs:
crates/model/src/qsbr_model.rs:
