/root/repo/target/debug/deps/reclamation-592347ec05e54169.d: tests/reclamation.rs

/root/repo/target/debug/deps/libreclamation-592347ec05e54169.rmeta: tests/reclamation.rs

tests/reclamation.rs:
