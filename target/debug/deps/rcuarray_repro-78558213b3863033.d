/root/repo/target/debug/deps/rcuarray_repro-78558213b3863033.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_repro-78558213b3863033.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
