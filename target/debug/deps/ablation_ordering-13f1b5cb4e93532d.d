/root/repo/target/debug/deps/ablation_ordering-13f1b5cb4e93532d.d: crates/bench/benches/ablation_ordering.rs

/root/repo/target/debug/deps/libablation_ordering-13f1b5cb4e93532d.rmeta: crates/bench/benches/ablation_ordering.rs

crates/bench/benches/ablation_ordering.rs:
