/root/repo/target/debug/deps/fig3_resize-8658e60a007c6ac0.d: crates/bench/benches/fig3_resize.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_resize-8658e60a007c6ac0.rmeta: crates/bench/benches/fig3_resize.rs Cargo.toml

crates/bench/benches/fig3_resize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
