/root/repo/target/debug/deps/rcuarray_repro-4916acb14de5c12c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_repro-4916acb14de5c12c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
