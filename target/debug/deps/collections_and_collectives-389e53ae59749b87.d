/root/repo/target/debug/deps/collections_and_collectives-389e53ae59749b87.d: tests/collections_and_collectives.rs Cargo.toml

/root/repo/target/debug/deps/libcollections_and_collectives-389e53ae59749b87.rmeta: tests/collections_and_collectives.rs Cargo.toml

tests/collections_and_collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
