/root/repo/target/debug/deps/fig3_resize-abffdc40727b7ed5.d: crates/bench/benches/fig3_resize.rs

/root/repo/target/debug/deps/libfig3_resize-abffdc40727b7ed5.rmeta: crates/bench/benches/fig3_resize.rs

crates/bench/benches/fig3_resize.rs:
