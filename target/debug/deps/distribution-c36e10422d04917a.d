/root/repo/target/debug/deps/distribution-c36e10422d04917a.d: tests/distribution.rs

/root/repo/target/debug/deps/distribution-c36e10422d04917a: tests/distribution.rs

tests/distribution.rs:
