/root/repo/target/debug/deps/ablation_clone-c5b959b4586e18cc.d: crates/bench/benches/ablation_clone.rs

/root/repo/target/debug/deps/libablation_clone-c5b959b4586e18cc.rmeta: crates/bench/benches/ablation_clone.rs

crates/bench/benches/ablation_clone.rs:
