/root/repo/target/debug/deps/rcuarray_repro-79b7399c05b1cbdf.d: src/lib.rs

/root/repo/target/debug/deps/librcuarray_repro-79b7399c05b1cbdf.rlib: src/lib.rs

/root/repo/target/debug/deps/librcuarray_repro-79b7399c05b1cbdf.rmeta: src/lib.rs

src/lib.rs:
