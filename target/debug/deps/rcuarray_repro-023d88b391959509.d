/root/repo/target/debug/deps/rcuarray_repro-023d88b391959509.d: src/lib.rs

/root/repo/target/debug/deps/rcuarray_repro-023d88b391959509: src/lib.rs

src/lib.rs:
