/root/repo/target/debug/deps/concurrency_stress-ddd95e3a784f582d.d: tests/concurrency_stress.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency_stress-ddd95e3a784f582d.rmeta: tests/concurrency_stress.rs Cargo.toml

tests/concurrency_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
