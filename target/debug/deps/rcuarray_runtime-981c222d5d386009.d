/root/repo/target/debug/deps/rcuarray_runtime-981c222d5d386009.d: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs

/root/repo/target/debug/deps/librcuarray_runtime-981c222d5d386009.rmeta: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs

crates/runtime/src/lib.rs:
crates/runtime/src/collectives.rs:
crates/runtime/src/comm.rs:
crates/runtime/src/dist.rs:
crates/runtime/src/fault.rs:
crates/runtime/src/global_lock.rs:
crates/runtime/src/locale.rs:
crates/runtime/src/privatization.rs:
crates/runtime/src/sync_var.rs:
crates/runtime/src/task.rs:
crates/runtime/src/topology.rs:
