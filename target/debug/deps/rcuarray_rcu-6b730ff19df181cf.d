/root/repo/target/debug/deps/rcuarray_rcu-6b730ff19df181cf.d: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

/root/repo/target/debug/deps/librcuarray_rcu-6b730ff19df181cf.rmeta: crates/rcu/src/lib.rs crates/rcu/src/list.rs crates/rcu/src/rcu_ptr.rs crates/rcu/src/reclaimer.rs

crates/rcu/src/lib.rs:
crates/rcu/src/list.rs:
crates/rcu/src/rcu_ptr.rs:
crates/rcu/src/reclaimer.rs:
