/root/repo/target/debug/deps/rcuarray_ebr-335e046b2cbd4c04.d: crates/ebr/src/lib.rs crates/ebr/src/backoff.rs crates/ebr/src/epoch.rs crates/ebr/src/guard.rs crates/ebr/src/ordering.rs crates/ebr/src/rcu_cell.rs crates/ebr/src/sharded.rs

/root/repo/target/debug/deps/librcuarray_ebr-335e046b2cbd4c04.rmeta: crates/ebr/src/lib.rs crates/ebr/src/backoff.rs crates/ebr/src/epoch.rs crates/ebr/src/guard.rs crates/ebr/src/ordering.rs crates/ebr/src/rcu_cell.rs crates/ebr/src/sharded.rs

crates/ebr/src/lib.rs:
crates/ebr/src/backoff.rs:
crates/ebr/src/epoch.rs:
crates/ebr/src/guard.rs:
crates/ebr/src/ordering.rs:
crates/ebr/src/rcu_cell.rs:
crates/ebr/src/sharded.rs:
