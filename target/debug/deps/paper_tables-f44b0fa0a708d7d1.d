/root/repo/target/debug/deps/paper_tables-f44b0fa0a708d7d1.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/libpaper_tables-f44b0fa0a708d7d1.rmeta: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
