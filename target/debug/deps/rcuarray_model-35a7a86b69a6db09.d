/root/repo/target/debug/deps/rcuarray_model-35a7a86b69a6db09.d: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

/root/repo/target/debug/deps/librcuarray_model-35a7a86b69a6db09.rlib: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

/root/repo/target/debug/deps/librcuarray_model-35a7a86b69a6db09.rmeta: crates/model/src/lib.rs crates/model/src/ebr_model.rs crates/model/src/explorer.rs crates/model/src/qsbr_model.rs

crates/model/src/lib.rs:
crates/model/src/ebr_model.rs:
crates/model/src/explorer.rs:
crates/model/src/qsbr_model.rs:
