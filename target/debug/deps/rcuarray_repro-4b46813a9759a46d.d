/root/repo/target/debug/deps/rcuarray_repro-4b46813a9759a46d.d: src/lib.rs

/root/repo/target/debug/deps/librcuarray_repro-4b46813a9759a46d.rlib: src/lib.rs

/root/repo/target/debug/deps/librcuarray_repro-4b46813a9759a46d.rmeta: src/lib.rs

src/lib.rs:
