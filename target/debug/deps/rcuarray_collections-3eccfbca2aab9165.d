/root/repo/target/debug/deps/rcuarray_collections-3eccfbca2aab9165.d: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_collections-3eccfbca2aab9165.rmeta: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs Cargo.toml

crates/collections/src/lib.rs:
crates/collections/src/dist_table.rs:
crates/collections/src/dist_vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
