/root/repo/target/debug/deps/rcuarray_repro-ebcc4de04c433ed5.d: src/lib.rs

/root/repo/target/debug/deps/rcuarray_repro-ebcc4de04c433ed5: src/lib.rs

src/lib.rs:
