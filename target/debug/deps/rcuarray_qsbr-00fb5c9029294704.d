/root/repo/target/debug/deps/rcuarray_qsbr-00fb5c9029294704.d: crates/qsbr/src/lib.rs crates/qsbr/src/defer_list.rs crates/qsbr/src/domain.rs crates/qsbr/src/record.rs crates/qsbr/src/registry.rs crates/qsbr/src/state.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_qsbr-00fb5c9029294704.rmeta: crates/qsbr/src/lib.rs crates/qsbr/src/defer_list.rs crates/qsbr/src/domain.rs crates/qsbr/src/record.rs crates/qsbr/src/registry.rs crates/qsbr/src/state.rs Cargo.toml

crates/qsbr/src/lib.rs:
crates/qsbr/src/defer_list.rs:
crates/qsbr/src/domain.rs:
crates/qsbr/src/record.rs:
crates/qsbr/src/registry.rs:
crates/qsbr/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
