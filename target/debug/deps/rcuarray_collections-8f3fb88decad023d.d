/root/repo/target/debug/deps/rcuarray_collections-8f3fb88decad023d.d: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/debug/deps/librcuarray_collections-8f3fb88decad023d.rmeta: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

crates/collections/src/lib.rs:
crates/collections/src/dist_table.rs:
crates/collections/src/dist_vector.rs:
