/root/repo/target/debug/deps/collections_and_collectives-47c11c660c3cc214.d: tests/collections_and_collectives.rs

/root/repo/target/debug/deps/collections_and_collectives-47c11c660c3cc214: tests/collections_and_collectives.rs

tests/collections_and_collectives.rs:
