/root/repo/target/debug/deps/distribution-aefcc3b2cbdf4e19.d: tests/distribution.rs

/root/repo/target/debug/deps/libdistribution-aefcc3b2cbdf4e19.rmeta: tests/distribution.rs

tests/distribution.rs:
