/root/repo/target/debug/deps/rcuarray_qsbr-0f8dcd3d30e68114.d: crates/qsbr/src/lib.rs crates/qsbr/src/defer_list.rs crates/qsbr/src/domain.rs crates/qsbr/src/record.rs crates/qsbr/src/registry.rs crates/qsbr/src/state.rs

/root/repo/target/debug/deps/librcuarray_qsbr-0f8dcd3d30e68114.rmeta: crates/qsbr/src/lib.rs crates/qsbr/src/defer_list.rs crates/qsbr/src/domain.rs crates/qsbr/src/record.rs crates/qsbr/src/registry.rs crates/qsbr/src/state.rs

crates/qsbr/src/lib.rs:
crates/qsbr/src/defer_list.rs:
crates/qsbr/src/domain.rs:
crates/qsbr/src/record.rs:
crates/qsbr/src/registry.rs:
crates/qsbr/src/state.rs:
