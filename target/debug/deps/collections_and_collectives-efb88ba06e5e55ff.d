/root/repo/target/debug/deps/collections_and_collectives-efb88ba06e5e55ff.d: tests/collections_and_collectives.rs

/root/repo/target/debug/deps/libcollections_and_collectives-efb88ba06e5e55ff.rmeta: tests/collections_and_collectives.rs

tests/collections_and_collectives.rs:
