/root/repo/target/debug/deps/rcuarray_collections-70a46bac33fa31e9.d: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/debug/deps/librcuarray_collections-70a46bac33fa31e9.rlib: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

/root/repo/target/debug/deps/librcuarray_collections-70a46bac33fa31e9.rmeta: crates/collections/src/lib.rs crates/collections/src/dist_table.rs crates/collections/src/dist_vector.rs

crates/collections/src/lib.rs:
crates/collections/src/dist_table.rs:
crates/collections/src/dist_vector.rs:
