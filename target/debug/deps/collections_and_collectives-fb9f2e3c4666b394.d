/root/repo/target/debug/deps/collections_and_collectives-fb9f2e3c4666b394.d: tests/collections_and_collectives.rs

/root/repo/target/debug/deps/collections_and_collectives-fb9f2e3c4666b394: tests/collections_and_collectives.rs

tests/collections_and_collectives.rs:
