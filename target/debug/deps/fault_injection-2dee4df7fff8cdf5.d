/root/repo/target/debug/deps/fault_injection-2dee4df7fff8cdf5.d: tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-2dee4df7fff8cdf5.rmeta: tests/fault_injection.rs

tests/fault_injection.rs:
