/root/repo/target/debug/deps/cross_scheme-68af9380c2838648.d: tests/cross_scheme.rs

/root/repo/target/debug/deps/cross_scheme-68af9380c2838648: tests/cross_scheme.rs

tests/cross_scheme.rs:
