/root/repo/target/debug/deps/baselines_equivalence-a524f22844a38007.d: tests/baselines_equivalence.rs

/root/repo/target/debug/deps/baselines_equivalence-a524f22844a38007: tests/baselines_equivalence.rs

tests/baselines_equivalence.rs:
