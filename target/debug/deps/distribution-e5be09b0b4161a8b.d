/root/repo/target/debug/deps/distribution-e5be09b0b4161a8b.d: tests/distribution.rs Cargo.toml

/root/repo/target/debug/deps/libdistribution-e5be09b0b4161a8b.rmeta: tests/distribution.rs Cargo.toml

tests/distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
