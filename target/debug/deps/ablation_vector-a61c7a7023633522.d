/root/repo/target/debug/deps/ablation_vector-a61c7a7023633522.d: crates/bench/benches/ablation_vector.rs

/root/repo/target/debug/deps/libablation_vector-a61c7a7023633522.rmeta: crates/bench/benches/ablation_vector.rs

crates/bench/benches/ablation_vector.rs:
