/root/repo/target/debug/deps/ablation_blocksize-3eb65689d0f3d7c2.d: crates/bench/benches/ablation_blocksize.rs Cargo.toml

/root/repo/target/debug/deps/libablation_blocksize-3eb65689d0f3d7c2.rmeta: crates/bench/benches/ablation_blocksize.rs Cargo.toml

crates/bench/benches/ablation_blocksize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
