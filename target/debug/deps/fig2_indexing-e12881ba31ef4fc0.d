/root/repo/target/debug/deps/fig2_indexing-e12881ba31ef4fc0.d: crates/bench/benches/fig2_indexing.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_indexing-e12881ba31ef4fc0.rmeta: crates/bench/benches/fig2_indexing.rs Cargo.toml

crates/bench/benches/fig2_indexing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
