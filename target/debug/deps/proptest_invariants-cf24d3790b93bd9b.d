/root/repo/target/debug/deps/proptest_invariants-cf24d3790b93bd9b.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-cf24d3790b93bd9b: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
