/root/repo/target/debug/deps/rcuarray_bench-07e8d5c0a2b2e91c.d: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/librcuarray_bench-07e8d5c0a2b2e91c.rmeta: crates/bench/src/lib.rs crates/bench/src/arrays.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/workload.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/arrays.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
