/root/repo/target/debug/deps/fig4_checkpoint-bca4117ef686455d.d: crates/bench/benches/fig4_checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_checkpoint-bca4117ef686455d.rmeta: crates/bench/benches/fig4_checkpoint.rs Cargo.toml

crates/bench/benches/fig4_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
