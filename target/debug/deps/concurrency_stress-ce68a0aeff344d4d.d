/root/repo/target/debug/deps/concurrency_stress-ce68a0aeff344d4d.d: tests/concurrency_stress.rs

/root/repo/target/debug/deps/concurrency_stress-ce68a0aeff344d4d: tests/concurrency_stress.rs

tests/concurrency_stress.rs:
