/root/repo/target/debug/deps/cell_model-de26ce18d7c21a65.d: crates/ebr/tests/cell_model.rs

/root/repo/target/debug/deps/libcell_model-de26ce18d7c21a65.rmeta: crates/ebr/tests/cell_model.rs

crates/ebr/tests/cell_model.rs:
