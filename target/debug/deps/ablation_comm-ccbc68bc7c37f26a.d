/root/repo/target/debug/deps/ablation_comm-ccbc68bc7c37f26a.d: crates/bench/benches/ablation_comm.rs

/root/repo/target/debug/deps/libablation_comm-ccbc68bc7c37f26a.rmeta: crates/bench/benches/ablation_comm.rs

crates/bench/benches/ablation_comm.rs:
