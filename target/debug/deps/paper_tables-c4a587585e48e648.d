/root/repo/target/debug/deps/paper_tables-c4a587585e48e648.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-c4a587585e48e648: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
