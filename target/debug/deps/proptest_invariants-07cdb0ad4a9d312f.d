/root/repo/target/debug/deps/proptest_invariants-07cdb0ad4a9d312f.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/libproptest_invariants-07cdb0ad4a9d312f.rmeta: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
