/root/repo/target/debug/deps/churn-876f4a5146a947a0.d: crates/qsbr/tests/churn.rs

/root/repo/target/debug/deps/churn-876f4a5146a947a0: crates/qsbr/tests/churn.rs

crates/qsbr/tests/churn.rs:
