/root/repo/target/debug/deps/rcuarray_runtime-6a80dd20a7365e5f.d: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs

/root/repo/target/debug/deps/rcuarray_runtime-6a80dd20a7365e5f: crates/runtime/src/lib.rs crates/runtime/src/collectives.rs crates/runtime/src/comm.rs crates/runtime/src/dist.rs crates/runtime/src/fault.rs crates/runtime/src/global_lock.rs crates/runtime/src/locale.rs crates/runtime/src/privatization.rs crates/runtime/src/sync_var.rs crates/runtime/src/task.rs crates/runtime/src/topology.rs

crates/runtime/src/lib.rs:
crates/runtime/src/collectives.rs:
crates/runtime/src/comm.rs:
crates/runtime/src/dist.rs:
crates/runtime/src/fault.rs:
crates/runtime/src/global_lock.rs:
crates/runtime/src/locale.rs:
crates/runtime/src/privatization.rs:
crates/runtime/src/sync_var.rs:
crates/runtime/src/task.rs:
crates/runtime/src/topology.rs:
