/root/repo/target/debug/deps/fig2_indexing-c6f2872be3fd7cb0.d: crates/bench/benches/fig2_indexing.rs

/root/repo/target/debug/deps/libfig2_indexing-c6f2872be3fd7cb0.rmeta: crates/bench/benches/fig2_indexing.rs

crates/bench/benches/fig2_indexing.rs:
