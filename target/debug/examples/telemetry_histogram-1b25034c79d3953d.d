/root/repo/target/debug/examples/telemetry_histogram-1b25034c79d3953d.d: examples/telemetry_histogram.rs

/root/repo/target/debug/examples/telemetry_histogram-1b25034c79d3953d: examples/telemetry_histogram.rs

examples/telemetry_histogram.rs:
