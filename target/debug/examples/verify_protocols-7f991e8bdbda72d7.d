/root/repo/target/debug/examples/verify_protocols-7f991e8bdbda72d7.d: examples/verify_protocols.rs

/root/repo/target/debug/examples/verify_protocols-7f991e8bdbda72d7: examples/verify_protocols.rs

examples/verify_protocols.rs:
