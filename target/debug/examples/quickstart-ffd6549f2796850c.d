/root/repo/target/debug/examples/quickstart-ffd6549f2796850c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ffd6549f2796850c: examples/quickstart.rs

examples/quickstart.rs:
