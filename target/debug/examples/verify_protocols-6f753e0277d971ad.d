/root/repo/target/debug/examples/verify_protocols-6f753e0277d971ad.d: examples/verify_protocols.rs Cargo.toml

/root/repo/target/debug/examples/libverify_protocols-6f753e0277d971ad.rmeta: examples/verify_protocols.rs Cargo.toml

examples/verify_protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
