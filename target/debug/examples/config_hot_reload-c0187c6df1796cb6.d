/root/repo/target/debug/examples/config_hot_reload-c0187c6df1796cb6.d: examples/config_hot_reload.rs

/root/repo/target/debug/examples/libconfig_hot_reload-c0187c6df1796cb6.rmeta: examples/config_hot_reload.rs

examples/config_hot_reload.rs:
