/root/repo/target/debug/examples/distributed_table-0fcc1e5aef1cf5eb.d: examples/distributed_table.rs

/root/repo/target/debug/examples/distributed_table-0fcc1e5aef1cf5eb: examples/distributed_table.rs

examples/distributed_table.rs:
