/root/repo/target/debug/examples/telemetry_histogram-d1b700e0798a373c.d: examples/telemetry_histogram.rs Cargo.toml

/root/repo/target/debug/examples/libtelemetry_histogram-d1b700e0798a373c.rmeta: examples/telemetry_histogram.rs Cargo.toml

examples/telemetry_histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
