/root/repo/target/debug/examples/verify_protocols-520910d9a4709b14.d: examples/verify_protocols.rs

/root/repo/target/debug/examples/verify_protocols-520910d9a4709b14: examples/verify_protocols.rs

examples/verify_protocols.rs:
