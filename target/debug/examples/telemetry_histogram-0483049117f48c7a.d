/root/repo/target/debug/examples/telemetry_histogram-0483049117f48c7a.d: examples/telemetry_histogram.rs

/root/repo/target/debug/examples/telemetry_histogram-0483049117f48c7a: examples/telemetry_histogram.rs

examples/telemetry_histogram.rs:
