/root/repo/target/debug/examples/distributed_vector-997dbe582638c256.d: examples/distributed_vector.rs

/root/repo/target/debug/examples/libdistributed_vector-997dbe582638c256.rmeta: examples/distributed_vector.rs

examples/distributed_vector.rs:
