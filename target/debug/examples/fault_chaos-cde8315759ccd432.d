/root/repo/target/debug/examples/fault_chaos-cde8315759ccd432.d: examples/fault_chaos.rs Cargo.toml

/root/repo/target/debug/examples/libfault_chaos-cde8315759ccd432.rmeta: examples/fault_chaos.rs Cargo.toml

examples/fault_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
