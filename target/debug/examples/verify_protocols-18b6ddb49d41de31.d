/root/repo/target/debug/examples/verify_protocols-18b6ddb49d41de31.d: examples/verify_protocols.rs

/root/repo/target/debug/examples/libverify_protocols-18b6ddb49d41de31.rmeta: examples/verify_protocols.rs

examples/verify_protocols.rs:
