/root/repo/target/debug/examples/config_hot_reload-5ec940432b8c7d9b.d: examples/config_hot_reload.rs

/root/repo/target/debug/examples/config_hot_reload-5ec940432b8c7d9b: examples/config_hot_reload.rs

examples/config_hot_reload.rs:
