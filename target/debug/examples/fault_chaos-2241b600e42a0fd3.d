/root/repo/target/debug/examples/fault_chaos-2241b600e42a0fd3.d: examples/fault_chaos.rs

/root/repo/target/debug/examples/libfault_chaos-2241b600e42a0fd3.rmeta: examples/fault_chaos.rs

examples/fault_chaos.rs:
