/root/repo/target/debug/examples/distributed_vector-0162ea2a51dd2eda.d: examples/distributed_vector.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_vector-0162ea2a51dd2eda.rmeta: examples/distributed_vector.rs Cargo.toml

examples/distributed_vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
