/root/repo/target/debug/examples/distributed_table-804ba76ce67d04b2.d: examples/distributed_table.rs

/root/repo/target/debug/examples/libdistributed_table-804ba76ce67d04b2.rmeta: examples/distributed_table.rs

examples/distributed_table.rs:
