/root/repo/target/debug/examples/quickstart-5964dbffc38c01b9.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-5964dbffc38c01b9.rmeta: examples/quickstart.rs

examples/quickstart.rs:
