/root/repo/target/debug/examples/config_hot_reload-225e96dccb11e9ab.d: examples/config_hot_reload.rs

/root/repo/target/debug/examples/config_hot_reload-225e96dccb11e9ab: examples/config_hot_reload.rs

examples/config_hot_reload.rs:
