/root/repo/target/debug/examples/distributed_vector-91b5b305d08f0311.d: examples/distributed_vector.rs

/root/repo/target/debug/examples/distributed_vector-91b5b305d08f0311: examples/distributed_vector.rs

examples/distributed_vector.rs:
