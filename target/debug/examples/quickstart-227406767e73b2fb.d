/root/repo/target/debug/examples/quickstart-227406767e73b2fb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-227406767e73b2fb: examples/quickstart.rs

examples/quickstart.rs:
