/root/repo/target/debug/examples/fault_chaos-99154692d4e49666.d: examples/fault_chaos.rs

/root/repo/target/debug/examples/fault_chaos-99154692d4e49666: examples/fault_chaos.rs

examples/fault_chaos.rs:
