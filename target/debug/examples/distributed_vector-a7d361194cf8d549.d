/root/repo/target/debug/examples/distributed_vector-a7d361194cf8d549.d: examples/distributed_vector.rs

/root/repo/target/debug/examples/distributed_vector-a7d361194cf8d549: examples/distributed_vector.rs

examples/distributed_vector.rs:
