/root/repo/target/debug/examples/distributed_table-c5f907c4e9521e93.d: examples/distributed_table.rs

/root/repo/target/debug/examples/distributed_table-c5f907c4e9521e93: examples/distributed_table.rs

examples/distributed_table.rs:
