/root/repo/target/debug/examples/distributed_table-4ca69e3139e75a9a.d: examples/distributed_table.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_table-4ca69e3139e75a9a.rmeta: examples/distributed_table.rs Cargo.toml

examples/distributed_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
