/root/repo/target/debug/examples/telemetry_histogram-d3986a7511bb62d8.d: examples/telemetry_histogram.rs

/root/repo/target/debug/examples/libtelemetry_histogram-d3986a7511bb62d8.rmeta: examples/telemetry_histogram.rs

examples/telemetry_histogram.rs:
