/root/repo/target/debug/examples/config_hot_reload-eaf9b2c0ea687753.d: examples/config_hot_reload.rs Cargo.toml

/root/repo/target/debug/examples/libconfig_hot_reload-eaf9b2c0ea687753.rmeta: examples/config_hot_reload.rs Cargo.toml

examples/config_hot_reload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
